"""Grounding: instantiate a program over its Herbrand universe.

Intelligent grounding in the usual sense: a fixpoint of *possible atoms*
(anything derivable ignoring negation) bounds instantiation, builtins are
evaluated at ground time, and default-negated literals whose atom can
never be derived are simplified away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import GroundingError
from ..logic.formulas import Atom, Comparison, Var, is_var
from ..observability import add, span
from ..runtime import checkpoint as budget_checkpoint
from .syntax import AspProgram


@dataclass(frozen=True)
class GroundRule:
    """A ground rule over atom indices."""

    head: FrozenSet[int]
    positive: FrozenSet[int]
    negative: FrozenSet[int]


@dataclass(frozen=True)
class GroundWeakConstraint:
    """A ground weak constraint over atom indices."""

    positive: FrozenSet[int]
    negative: FrozenSet[int]
    weight: int
    level: int


@dataclass
class GroundProgram:
    """The grounder's output: indexed atoms and index-based rules."""

    atoms: List[Atom]
    index: Dict[Atom, int]
    rules: List[GroundRule]
    weak_constraints: List[GroundWeakConstraint]

    def atom_index(self, a: Atom) -> Optional[int]:
        """Index of a ground atom, or None if it can never be derived."""
        return self.index.get(a)

    @property
    def n_atoms(self) -> int:
        """Number of ground atoms."""
        return len(self.atoms)


def _evaluate_builtin(c: Comparison) -> bool:
    left, right = c.left, c.right
    if is_var(left) or is_var(right):
        raise GroundingError(f"builtin {c!r} not ground at evaluation time")
    if c.op == "=":
        return left == right
    if c.op == "!=":
        return left != right
    try:
        return {
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }[c.op]
    except TypeError:
        return False


def _substitute(a: Atom, binding: Dict[Var, object]) -> Atom:
    return Atom(
        a.predicate,
        tuple(binding.get(t, t) if is_var(t) else t for t in a.terms),
    )


def _match(
    pattern: Atom, ground: Atom, binding: Dict[Var, object]
) -> Optional[Dict[Var, object]]:
    if pattern.predicate != ground.predicate or pattern.arity != ground.arity:
        return None
    local = dict(binding)
    for p, g in zip(pattern.terms, ground.terms):
        if is_var(p):
            if p in local:
                if local[p] != g:
                    return None
            else:
                local[p] = g
        elif p != g:
            return None
    return local


class Grounder:
    """Grounds an :class:`AspProgram`."""

    def __init__(self, prog: AspProgram) -> None:
        self._program = prog

    def ground(self) -> GroundProgram:
        """Ground the program: possible-atom fixpoint, then instantiation."""
        with span("asp.ground", rules=len(self._program.rules)):
            return self._ground()

    def _ground(self) -> GroundProgram:
        with span("asp.ground.possible_atoms"):
            possible = self._possible_atoms()
        by_pred: Dict[str, List[Atom]] = {}
        for a in possible:
            by_pred.setdefault(a.predicate, []).append(a)

        atoms = sorted(possible, key=repr)
        index = {a: i for i, a in enumerate(atoms)}
        ground_rules: List[GroundRule] = []
        seen_rules: Set[Tuple] = set()
        for rule in self._program.rules:
            for binding in self._body_matches(rule.positive, by_pred):
                # A half-ground program is unsound, so grounding has no
                # anytime variant: budget exhaustion propagates.
                budget_checkpoint()
                if not self._builtins_hold(rule.builtins, binding):
                    continue
                head = frozenset(
                    index[g]
                    for g in (
                        _substitute(a, binding) for a in rule.head
                    )
                    if g in index
                )
                if rule.head and not head:
                    # All head disjuncts fell outside the possible set;
                    # should not happen because heads seed the fixpoint.
                    raise GroundingError(
                        f"head of {rule!r} vanished during grounding"
                    )
                positive = frozenset(
                    index[_substitute(a, binding)] for a in rule.positive
                )
                negative = set()
                for a in rule.negative:
                    g = _substitute(a, binding)
                    if g.free_variables():
                        raise GroundingError(
                            f"negative literal {g!r} not ground"
                        )
                    i = index.get(g)
                    if i is not None:
                        negative.add(i)
                    # else: the atom can never be derived, so ``not g``
                    # is certainly true — drop the literal.
                key = (head, positive, frozenset(negative))
                if key in seen_rules:
                    continue
                seen_rules.add(key)
                ground_rules.append(
                    GroundRule(head, positive, frozenset(negative))
                )
        ground_weak: List[GroundWeakConstraint] = []
        seen_weak: Set[Tuple] = set()
        for wc in self._program.weak_constraints:
            for binding in self._body_matches(wc.positive, by_pred):
                if not self._builtins_hold(wc.builtins, binding):
                    continue
                positive = frozenset(
                    index[_substitute(a, binding)] for a in wc.positive
                )
                negative = set()
                for a in wc.negative:
                    g = _substitute(a, binding)
                    i = index.get(g)
                    if i is not None:
                        negative.add(i)
                key = (positive, frozenset(negative), wc.weight, wc.level)
                if key in seen_weak:
                    continue
                seen_weak.add(key)
                ground_weak.append(
                    GroundWeakConstraint(
                        positive, frozenset(negative), wc.weight, wc.level
                    )
                )
        add("asp.ground_atoms", len(atoms))
        add("asp.ground_rules", len(ground_rules))
        add("asp.ground_weak_constraints", len(ground_weak))
        return GroundProgram(atoms, index, ground_rules, ground_weak)

    # ------------------------------------------------------------------

    def _possible_atoms(self) -> Set[Atom]:
        """Least fixpoint of head atoms derivable ignoring negation."""
        possible: Set[Atom] = set()
        by_pred: Dict[str, List[Atom]] = {}

        def add(a: Atom) -> bool:
            if a in possible:
                return False
            possible.add(a)
            by_pred.setdefault(a.predicate, []).append(a)
            return True

        changed = True
        while changed:
            changed = False
            for rule in self._program.rules:
                if rule.is_constraint:
                    continue
                for binding in self._body_matches(rule.positive, by_pred):
                    budget_checkpoint()
                    if not self._builtins_hold(rule.builtins, binding):
                        continue
                    for h in rule.head:
                        if add(_substitute(h, binding)):
                            changed = True
        return possible

    def _body_matches(
        self,
        positive: Sequence[Atom],
        by_pred: Dict[str, List[Atom]],
    ) -> Iterator[Dict[Var, object]]:
        def recurse(i: int, binding: Dict[Var, object]):
            if i == len(positive):
                yield dict(binding)
                return
            pattern = positive[i]
            for candidate in by_pred.get(pattern.predicate, ()):
                extended = _match(pattern, candidate, binding)
                if extended is not None:
                    yield from recurse(i + 1, extended)

        yield from recurse(0, {})

    @staticmethod
    def _builtins_hold(
        builtins: Sequence[Comparison], binding: Dict[Var, object]
    ) -> bool:
        for c in builtins:
            ground = Comparison(
                c.op,
                binding.get(c.left, c.left) if is_var(c.left) else c.left,
                binding.get(c.right, c.right) if is_var(c.right) else c.right,
            )
            if not _evaluate_builtin(ground):
                return False
        return True


def ground_program(prog: AspProgram) -> GroundProgram:
    """Ground *prog*."""
    return Grounder(prog).ground()
