"""Stable-model search for ground disjunctive programs.

The solver follows the definition: M is a stable model (answer set) of P
iff M is a ⊆-minimal model of the Gelfond–Lifschitz reduct P^M [67].

Search strategy:

1. Translate the ground program to clauses (a rule ``H ← B, not C`` is
   the clause ``⋁¬B ∨ ⋁C ∨ ⋁H``); classical models of the clauses are
   exactly the classical models of the program.
2. Enumerate classical models with a small DPLL (false-first branching,
   unit propagation), greedily shrinking each found model.
3. Check each candidate for stability by asking — with a second DPLL
   call — whether the reduct has a model strictly below the candidate.
4. Block the candidate *and all its supersets* with the clause
   ``⋁_{a∈M} ¬a`` and continue.  Blocking supersets is sound because a
   stable model never has a proper classical submodel: any classical
   model below it would also model the reduct, contradicting minimality.

This is exponential in the worst case — as it must be: deciding stable
models of disjunctive programs is Σ₂ᵖ-complete, which the paper notes is
exactly the expressiveness CQA needs (Section 3.3).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import BudgetExceededError, SolverError
from ..observability import add, annotate, span
from ..runtime import (
    Budget,
    BudgetExhaustion,
    Partial,
    resolve_budget,
    use_budget,
)
from ..runtime import checkpoint as budget_checkpoint
from .grounding import GroundProgram, GroundRule

Clause = Tuple[int, ...]  # DIMACS-style: +i / -i for atom index i-1


def _rule_clause(rule: GroundRule) -> Clause:
    clause = tuple(sorted(
        {-(p + 1) for p in rule.positive}
        | {c + 1 for c in rule.negative}
        | {h + 1 for h in rule.head}
    ))
    return clause


def program_clauses(ground: GroundProgram) -> List[Clause]:
    """Clausal translation of all ground rules."""
    return [_rule_clause(r) for r in ground.rules]


def support_clauses(ground: GroundProgram) -> List[Clause]:
    """Supportedness pruning clauses (sound for stable-model search).

    Every atom of a stable model has a rule with the atom in its head
    and a true body.  For an atom with *exactly one* candidate rule, the
    body must then be true, which yields plain clauses; atoms heading no
    rule can never be true.  These clauses cut the classical-model space
    the enumerator wades through by orders of magnitude while keeping
    every stable model (stable ⊆ supported).
    """
    defining: Dict[int, List[int]] = {}
    for index, rule in enumerate(ground.rules):
        for h in rule.head:
            defining.setdefault(h, []).append(index)
    clauses: List[Clause] = []
    for atom_index in range(ground.n_atoms):
        rules = defining.get(atom_index, [])
        if not rules:
            clauses.append((-(atom_index + 1),))
            continue
        if len(rules) != 1:
            continue
        rule = ground.rules[rules[0]]
        for p in rule.positive:
            clauses.append(tuple(sorted((-(atom_index + 1), p + 1))))
        for n in rule.negative:
            clauses.append(tuple(sorted((-(atom_index + 1), -(n + 1)))))
    return clauses


class _Dpll:
    """A small DPLL SAT solver over integer literals (1-based).

    Unit propagation is indexed: assigning a variable only rescans the
    clauses that mention it.
    """

    def __init__(self, n_vars: int, clauses: Sequence[Clause]) -> None:
        self._n = n_vars
        self._clauses = [tuple(c) for c in clauses]
        self._by_var: Dict[int, List[int]] = {}
        for index, clause in enumerate(self._clauses):
            for lit in clause:
                self._by_var.setdefault(abs(lit), []).append(index)

    def solve(
        self,
        fixed: Optional[Dict[int, bool]] = None,
    ) -> Optional[Set[int]]:
        """Find a model; returns the set of true variables or None.

        *fixed* pre-assigns variables (1-based).  Branching prefers
        False, so discovered models tend to be small.
        """
        assignment: Dict[int, bool] = dict(fixed or {})
        if not self._propagate(assignment, None):
            return None
        return self._search(assignment)

    # ------------------------------------------------------------------

    def _clause_state(
        self, clause: Clause, assignment: Dict[int, bool]
    ) -> Tuple[bool, List[int]]:
        """(satisfied, unassigned literals)."""
        unassigned = []
        for lit in clause:
            var = abs(lit)
            want = lit > 0
            if var in assignment:
                if assignment[var] == want:
                    return True, []
            else:
                unassigned.append(lit)
        return False, unassigned

    def _propagate(
        self,
        assignment: Dict[int, bool],
        trigger_vars: Optional[List[int]],
    ) -> bool:
        """Unit propagation; False on conflict.

        When *trigger_vars* is None every clause is checked once; after
        that, only clauses touching newly assigned variables are revisited.
        """
        if trigger_vars is None:
            queue = list(range(len(self._clauses)))
        else:
            queue = []
            seen = set()
            for var in trigger_vars:
                for index in self._by_var.get(var, ()):
                    if index not in seen:
                        seen.add(index)
                        queue.append(index)
        while queue:
            index = queue.pop()
            satisfied, unassigned = self._clause_state(
                self._clauses[index], assignment
            )
            if satisfied:
                continue
            if not unassigned:
                return False
            if len(unassigned) == 1:
                lit = unassigned[0]
                var = abs(lit)
                assignment[var] = lit > 0
                for affected in self._by_var.get(var, ()):
                    if affected != index:
                        queue.append(affected)
        return True

    def _search(self, assignment: Dict[int, bool]) -> Optional[Set[int]]:
        budget_checkpoint()
        # Pick a branching variable from an unsatisfied clause.
        branch_var = None
        for clause in self._clauses:
            satisfied, unassigned = self._clause_state(clause, assignment)
            if not satisfied:
                if not unassigned:
                    return None
                branch_var = abs(unassigned[0])
                break
        if branch_var is None:
            # Every clause satisfied: complete with False.
            model = {v for v, value in assignment.items() if value}
            return model
        for value in (False, True):
            trial = dict(assignment)
            trial[branch_var] = value
            if self._propagate(trial, [branch_var]):
                result = self._search(trial)
                if result is not None:
                    return result
        return None


def _is_model(clauses: Iterable[Clause], true_vars: Set[int]) -> bool:
    for clause in clauses:
        if not any(
            (lit > 0 and abs(lit) in true_vars)
            or (lit < 0 and abs(lit) not in true_vars)
            for lit in clause
        ):
            return False
    return True


def _greedy_shrink(
    model: Set[int], clauses: Sequence[Clause]
) -> Set[int]:
    """Remove atoms one at a time while the assignment stays a model."""
    current = set(model)
    for var in sorted(model, reverse=True):
        if var not in current:
            continue
        candidate = current - {var}
        if _is_model(clauses, candidate):
            current = candidate
    return current


def reduct_clauses(
    ground: GroundProgram, model_atoms: Set[int]
) -> List[Clause]:
    """Clauses of the GL reduct P^M.

    *model_atoms* holds 0-based atom indices; the returned clauses use
     1-based DPLL variables (variable i+1 for atom i).
    """
    clauses: List[Clause] = []
    for rule in ground.rules:
        if rule.negative & model_atoms:
            continue  # rule deleted by the reduct
        clause = tuple(sorted(
            {-(p + 1) for p in rule.positive}
            | {h + 1 for h in rule.head}
        ))
        clauses.append(clause)
    return clauses


def is_stable(ground: GroundProgram, model_atoms: Set[int]) -> bool:
    """Is the set of (0-based) atom indices a stable model?"""
    reduct = reduct_clauses(ground, model_atoms)
    model_vars = {i + 1 for i in model_atoms}
    if not _is_model(reduct, model_vars):
        return False
    if not model_vars:
        return True
    # Look for a strictly smaller model of the reduct: everything outside
    # the candidate is false, and at least one candidate atom is false.
    fixed = {
        v: False
        for v in range(1, ground.n_atoms + 1)
        if v not in model_vars
    }
    smaller_clause = tuple(sorted(-v for v in model_vars))
    solver = _Dpll(ground.n_atoms, reduct + [smaller_clause])
    return solver.solve(fixed=fixed) is None


def stable_models(
    ground: GroundProgram,
    limit: Optional[int] = None,
    max_candidates: int = 100000,
    blocking_atoms: Optional[FrozenSet[int]] = None,
) -> List[FrozenSet[int]]:
    """All stable models of a ground program, as sets of atom indices.

    ``blocking_atoms`` (0-based indices) enables *projected blocking*:
    after each candidate, only its restriction to those atoms is blocked
    (with all its supersets).  This is sound only when the caller
    guarantees that (a) every classical model is determined by its
    projection and (b) no stable model's projection strictly contains
    another model's projection — repair programs satisfy both: models
    are fixed by their deletion atoms, and stable deletions are minimal
    hitting sets.  Projected blocking collapses the enumeration from all
    hitting sets to exactly the minimal ones.
    """
    partial = stable_models_partial(
        ground, limit, max_candidates, blocking_atoms
    )
    return partial.unwrap(strict=partial.hit_resource_limit)


def stable_models_partial(
    ground: GroundProgram,
    limit: Optional[int] = None,
    max_candidates: int = 100000,
    blocking_atoms: Optional[FrozenSet[int]] = None,
    budget: Optional[Budget] = None,
) -> "Partial[List[FrozenSet[int]]]":
    """Anytime stable-model enumeration.

    Every model in the value passed the full stability check, so a
    budget-truncated prefix is sound: it is a subset of the models the
    unbudgeted call returns.  Candidate-budget overflow (the historical
    ``max_candidates`` guard) still raises :class:`SolverError` — that
    is a safety valve against runaway blocking-clause growth, not a
    graceful-degradation path.
    """
    with span(
        "asp.solve", atoms=ground.n_atoms, rules=len(ground.rules)
    ):
        budget = resolve_budget(budget)
        models: List[FrozenSet[int]] = []
        exhausted = None
        with use_budget(budget):
            try:
                complete = _enumerate_stable_models(
                    ground, limit, max_candidates, blocking_atoms,
                    budget, models,
                )
                exhausted = None if complete else BudgetExhaustion.COUNT
            except BudgetExceededError as exc:
                if budget is not None and budget.strict:
                    raise
                exhausted = BudgetExhaustion(exc.reason)
        ordered = sorted(models, key=lambda m: (len(m), sorted(m)))
        annotate(models=len(ordered))
        if exhausted is None:
            return Partial.done(ordered, budget)
        add("asp.models_truncated")
        annotate(truncated=exhausted.value)
        return Partial.truncated(ordered, exhausted, budget)


def _enumerate_stable_models(
    ground: GroundProgram,
    limit: Optional[int],
    max_candidates: int,
    blocking_atoms: Optional[FrozenSet[int]],
    budget: Optional[Budget],
    models: List[FrozenSet[int]],
) -> bool:
    """Append stable models to *models*; False when ``limit`` cut off
    the enumeration with candidates still outstanding."""
    base = program_clauses(ground)
    pruning = support_clauses(ground)
    blocking: List[Clause] = []
    for _ in range(max_candidates):
        solver = _Dpll(ground.n_atoms, base + pruning + blocking)
        found = solver.solve()
        if found is None:
            return True
        candidate = _greedy_shrink(found, base + pruning + blocking)
        add("asp.candidates_checked")
        if is_stable(ground, {v - 1 for v in candidate}):
            add("asp.models_accepted")
            if budget is not None:
                budget.count_result()
            models.append(
                frozenset(v - 1 for v in candidate)  # back to 0-based
            )
            if limit is not None and len(models) >= limit:
                return False
        if blocking_atoms is not None:
            projected = [
                v for v in candidate if (v - 1) in blocking_atoms
            ]
            if not projected:
                # The empty projection's model is unique; nothing else
                # can follow without being a projection-superset.
                return True
            blocking.append(tuple(sorted(-v for v in projected)))
        elif candidate:
            blocking.append(tuple(sorted(-v for v in candidate)))
        else:
            # The empty model blocks everything.
            return True
    raise SolverError(
        "stable-model search exceeded the candidate budget"
    )
