"""Repair programs: ICs compiled to answer-set programs (Section 3.3).

Following Example 3.5, a set of denial constraints over an instance with
tids becomes a disjunctive program whose stable models are exactly the
S-repairs:

* the instance's facts (with tids) are program facts;
* each denial constraint contributes one disjunctive rule whose body
  captures a violation and whose head offers the alternative deletions
  (annotation constant ``d``);
* inertia rules keep undeleted tuples (annotation ``s``).

Adding the weak constraints of Example 4.2 makes the *optimal* stable
models correspond to the C-repairs.  CQA is cautious reasoning over
query rules on the ``s``-annotated atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..constraints.base import IntegrityConstraint
from ..constraints.cfd import ConditionalFunctionalDependency
from ..constraints.denial import DenialConstraint
from ..constraints.fd import FunctionalDependency
from ..errors import SolverError
from ..logic.formulas import Atom, Var
from ..logic.queries import ConjunctiveQuery
from ..relational.database import Database, Fact
from ..repairs.base import Repair
from .reasoning import AnswerSet, Solver
from .syntax import AspProgram, AspRule, WeakConstraint, asp_fact

DELETED = "d"
STAYS = "s"


def relevant_relations(
    query: ConjunctiveQuery,
    constraints: Sequence[IntegrityConstraint],
    db: Database,
) -> FrozenSet[str]:
    """Relations that can influence the consistent answers to *query*.

    ConsEx [43] uses magic sets to focus the repair program on the part
    of the database the query can see; this is the relation-level core of
    that idea: starting from the query's relations, close under
    constraints (a constraint mentioning a relevant relation drags in all
    its relations, since repairing it may touch them).  Relations outside
    the closure can neither change nor be changed by the relevant
    repairs.
    """
    constraint_relations = []
    for ic in constraints:
        for dc in denial_constraints_of((ic,), db):
            constraint_relations.append(frozenset(dc.predicates()))
    relevant = {a.predicate for a in query.atoms}
    changed = True
    while changed:
        changed = False
        for group in constraint_relations:
            if group & relevant and not group <= relevant:
                relevant |= group
                changed = True
    return frozenset(relevant)


def primed(predicate: str) -> str:
    """The annotated nickname predicate for *predicate* (paper's R')."""
    return f"{predicate}__r"


def denial_constraints_of(
    constraints: Sequence[IntegrityConstraint], db: Database
) -> List[DenialConstraint]:
    """Normalize the supported constraints to denial constraints."""
    out: List[DenialConstraint] = []
    for ic in constraints:
        if isinstance(ic, DenialConstraint):
            out.append(ic)
        elif isinstance(ic, FunctionalDependency):
            out.extend(ic.to_denial_constraints(db))
        elif isinstance(ic, ConditionalFunctionalDependency):
            out.extend(ic.to_denial_constraints(db))
        else:
            raise SolverError(
                "repair programs support denial-class constraints "
                "expressible as DCs (denial constraints, FDs, keys); got "
                f"{type(ic).__name__} — see Section 3.3 of the paper "
                "for the extra annotations interacting ICs would need"
            )
    return out


@dataclass
class RepairProgram:
    """The compiled repair program for one instance and constraint set."""

    db: Database
    constraints: Tuple[IntegrityConstraint, ...]
    include_weak_constraints: bool = False

    def __post_init__(self) -> None:
        self.constraints = tuple(self.constraints)
        self._dcs = denial_constraints_of(self.constraints, self.db)
        self._program = self._compile()
        self._solver: Optional[Solver] = None

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _compile(self) -> AspProgram:
        rules: List[AspRule] = []
        for tid, fact in sorted(
            self.db.facts_with_tids().items(), key=lambda kv: kv[0]
        ):
            rules.append(
                asp_fact(Atom(fact.relation, (tid,) + fact.values))
            )
        for dc in self._dcs:
            rules.append(self._violation_rule(dc))
        for relation in self.db.schema.names():
            rules.append(self._inertia_rule(relation))
        weak: List[WeakConstraint] = []
        if self.include_weak_constraints:
            for relation in self.db.schema.names():
                weak.append(self._weak_constraint(relation))
        return AspProgram(tuple(rules), tuple(weak))

    def _violation_rule(self, dc: DenialConstraint) -> AspRule:
        body: List[Atom] = []
        head: List[Atom] = []
        for i, a in enumerate(dc.atoms):
            tid_var = Var(f"t{i}_")
            body.append(Atom(a.predicate, (tid_var,) + tuple(a.terms)))
            head.append(
                Atom(
                    primed(a.predicate),
                    (tid_var,) + tuple(a.terms) + (DELETED,),
                )
            )
        return AspRule(
            tuple(head), tuple(body), (), tuple(dc.conditions)
        )

    def _inertia_rule(self, relation: str) -> AspRule:
        arity = self.db.schema.relation(relation).arity
        tid_var = Var("t_")
        value_vars = tuple(Var(f"x{i}_") for i in range(arity))
        original = Atom(relation, (tid_var,) + value_vars)
        stays = Atom(primed(relation), (tid_var,) + value_vars + (STAYS,))
        deleted = Atom(
            primed(relation), (tid_var,) + value_vars + (DELETED,)
        )
        return AspRule((stays,), (original,), (deleted,), ())

    def _weak_constraint(self, relation: str) -> WeakConstraint:
        arity = self.db.schema.relation(relation).arity
        tid_var = Var("t_")
        value_vars = tuple(Var(f"x{i}_") for i in range(arity))
        original = Atom(relation, (tid_var,) + value_vars)
        deleted = Atom(
            primed(relation), (tid_var,) + value_vars + (DELETED,)
        )
        return WeakConstraint((original, deleted), (), (), weight=1, level=1)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    @property
    def program(self) -> AspProgram:
        """The compiled ASP program."""
        return self._program

    @staticmethod
    def _deletion_atom(a) -> bool:
        """Projection for blocking: the d-annotated nickname atoms.

        Models of a repair program are determined by their deletion
        atoms and stable deletions are minimal hitting sets, so the
        projected-blocking soundness conditions hold (see
        :func:`repro.asp.solver.stable_models`).
        """
        return (
            a.predicate.endswith("__r")
            and len(a.terms) > 0
            and a.terms[-1] == DELETED
        )

    @property
    def solver(self) -> Solver:
        """The (cached) solver, with deletion-projected blocking."""
        if self._solver is None:
            self._solver = Solver(
                self._program, blocking_projection=self._deletion_atom
            )
        return self._solver

    def answer_sets(self) -> List[AnswerSet]:
        """All stable models of the repair program."""
        return self.solver.answer_sets()

    def repairs(self) -> List[Repair]:
        """S-repairs read off the stable models (kept ``s`` atoms)."""
        return [
            self._read_repair(s) for s in self.answer_sets()
        ]

    def c_repairs(self) -> List[Repair]:
        """C-repairs: repairs from the weak-constraint-optimal models.

        Requires ``include_weak_constraints=True``.
        """
        if not self.include_weak_constraints:
            raise SolverError(
                "compile with include_weak_constraints=True to get "
                "C-repairs (Example 4.2)"
            )
        return [
            self._read_repair(s)
            for s in self.solver.optimal_answer_sets()
        ]

    def _read_repair(self, answer_set: AnswerSet) -> Repair:
        kept: List[Fact] = []
        for relation in self.db.schema.names():
            for a in answer_set.with_predicate(primed(relation)):
                if a.terms[-1] == STAYS:
                    kept.append(Fact(relation, tuple(a.terms[1:-1])))
        instance = self.db.delete(
            [f for f in self.db.facts() if f not in set(kept)]
        )
        return Repair(self.db, instance)

    # ------------------------------------------------------------------
    # CQA on top of the program (cautious reasoning over query rules)
    # ------------------------------------------------------------------

    def query_rule(
        self, query: ConjunctiveQuery, answer_predicate: str = "Ans"
    ) -> AspRule:
        """The query rule over ``s``-annotated atoms."""
        body: List[Atom] = []
        for i, a in enumerate(query.atoms):
            tid_var = Var(f"qt{i}_")
            body.append(
                Atom(
                    primed(a.predicate),
                    (tid_var,) + tuple(a.terms) + (STAYS,),
                )
            )
        head = Atom(answer_predicate, tuple(query.head))
        return AspRule((head,), tuple(body), (), tuple(query.conditions))

    def restricted_to_query(
        self, query: ConjunctiveQuery
    ) -> "RepairProgram":
        """The repair program over the query-relevant slice (ConsEx-style).

        Facts and constraints over relations the query cannot observe are
        dropped; consistent answers are unchanged because repairs factor
        over the relevance partition.
        """
        relevant = relevant_relations(query, self.constraints, self.db)
        sliced_db = self.db.delete(
            [f for f in self.db.facts() if f.relation not in relevant]
        )
        sliced_constraints = tuple(
            ic
            for ic in self.constraints
            if all(
                set(dc.predicates()) <= relevant
                for dc in denial_constraints_of((ic,), self.db)
            )
        )
        return RepairProgram(
            sliced_db,
            sliced_constraints,
            include_weak_constraints=self.include_weak_constraints,
        )

    def consistent_answers(
        self,
        query: ConjunctiveQuery,
        semantics: str = "s",
        optimize: bool = False,
    ) -> FrozenSet[Tuple]:
        """``Cons(Q, D, Σ)`` as cautious answers of the extended program.

        ``optimize=True`` first slices the program to the query-relevant
        relations (the ConsEx magic-set idea at relation granularity).
        """
        if optimize:
            return self.restricted_to_query(query).consistent_answers(
                query, semantics=semantics, optimize=False
            )
        extended = self._program.extended_with([self.query_rule(query)])
        solver = Solver(
            extended, blocking_projection=self._deletion_atom
        )
        pattern = Atom("Ans", tuple(query.head))
        if semantics == "s":
            return frozenset(solver.cautious(pattern))
        if semantics == "c":
            if not self.include_weak_constraints:
                raise SolverError(
                    "C-repair CQA needs include_weak_constraints=True"
                )
            return frozenset(solver.cautious(pattern, optimal_only=True))
        raise ValueError(f"unknown semantics {semantics!r}")

    def possible_answers(
        self, query: ConjunctiveQuery
    ) -> FrozenSet[Tuple]:
        """Brave answers: true in at least one repair."""
        extended = self._program.extended_with([self.query_rule(query)])
        solver = Solver(
            extended, blocking_projection=self._deletion_atom
        )
        pattern = Atom("Ans", tuple(query.head))
        return frozenset(solver.brave(pattern))
