"""Text syntax for answer-set programs (DLV-style).

Lets the paper's repair programs be written the way Section 3.3 prints
them::

    program = parse_asp_program('''
        s(t4, a4).  s(t5, a2).  s(t6, a3).
        sp(T1, X, d) | sp(T3, Y, d) :- s(T1, X), s(T3, Y), X != Y.
        sp(T, X, keep) :- s(T, X), not sp(T, X, d).
        :- sp(T, X, d), sp(T, X, keep).
        :~ sp(T, X, d). [1@1]
    ''')

Conventions: identifiers starting uppercase (or ``_``) are variables;
lowercase identifiers, numbers, and quoted strings are constants; ``|``
separates head disjuncts; ``not`` marks default negation; ``:-`` with an
empty head is a hard constraint; ``:~ body. [w@l]`` is a weak constraint.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import GroundingError
from ..logic.formulas import Atom, Comparison, Var
from .syntax import AspProgram, AspRule, WeakConstraint

_TOKEN = re.compile(
    r"""
    \s*(
        :-|:~              |
        !=|>=|<=|<>|=|<|>  |
        [(),.\[\]|@]       |
        '[^']*'            |
        "[^"]*"            |
        -?\d+\.\d+         |
        -?\d+              |
        [A-Za-z_][A-Za-z_0-9]*
    )
    """,
    re.VERBOSE,
)

_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


def _tokenize(text: str) -> List[str]:
    # Strip % comments line by line.
    lines = [line.split("%", 1)[0] for line in text.splitlines()]
    text = "\n".join(lines)
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            if text[position:].strip():
                raise GroundingError(
                    f"cannot tokenize {text[position:position + 20]!r}"
                )
            break
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _AspParser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    def peek(self) -> Optional[str]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def take(self, expected: Optional[str] = None) -> str:
        token = self.peek()
        if token is None:
            raise GroundingError("unexpected end of program text")
        if expected is not None and token != expected:
            raise GroundingError(
                f"expected {expected!r}, found {token!r}"
            )
        self._index += 1
        return token

    def done(self) -> bool:
        return self._index >= len(self._tokens)

    # ------------------------------------------------------------------

    def term(self) -> object:
        token = self.take()
        if token.startswith(("'", '"')):
            return token[1:-1]
        if re.fullmatch(r"-?\d+", token):
            return int(token)
        if re.fullmatch(r"-?\d+\.\d+", token):
            return float(token)
        if token[0].isupper() or token[0] == "_":
            return Var(token)
        return token

    def atom(self) -> Atom:
        name = self.take()
        if not re.fullmatch(r"[a-zA-Z_][A-Za-z_0-9]*", name):
            raise GroundingError(f"bad predicate name {name!r}")
        terms: List[object] = []
        if self.peek() == "(":
            self.take("(")
            if self.peek() != ")":
                terms.append(self.term())
                while self.peek() == ",":
                    self.take(",")
                    terms.append(self.term())
            self.take(")")
        return Atom(name, tuple(terms))

    def body(self) -> Tuple[Tuple[Atom, ...], Tuple[Atom, ...],
                            Tuple[Comparison, ...]]:
        positive: List[Atom] = []
        negative: List[Atom] = []
        builtins: List[Comparison] = []
        while True:
            if self.peek() == "not":
                self.take("not")
                negative.append(self.atom())
            else:
                saved = self._index
                first = self.take()
                nxt = self.peek()
                self._index = saved
                is_atom = (
                    re.fullmatch(r"[a-zA-Z_][A-Za-z_0-9]*", first)
                    and nxt in ("(", ",", ".", None)
                    and not (nxt in _COMPARISON_OPS)
                )
                if is_atom:
                    positive.append(self.atom())
                else:
                    left = self.term()
                    op = self.take()
                    if op not in _COMPARISON_OPS:
                        raise GroundingError(
                            f"expected comparison operator, got {op!r}"
                        )
                    if op == "<>":
                        op = "!="
                    builtins.append(Comparison(op, left, self.term()))
            if self.peek() == ",":
                self.take(",")
                continue
            break
        return tuple(positive), tuple(negative), tuple(builtins)

    def statement(self) -> object:
        if self.peek() == ":~":
            self.take(":~")
            positive, negative, builtins = self.body()
            self.take(".")
            weight, level = 1, 1
            if self.peek() == "[":
                self.take("[")
                weight = int(self.take())
                if self.peek() == "@":
                    self.take("@")
                    level = int(self.take())
                self.take("]")
            return WeakConstraint(
                positive, negative, builtins, weight=weight, level=level
            )
        if self.peek() == ":-":
            self.take(":-")
            positive, negative, builtins = self.body()
            self.take(".")
            return AspRule((), positive, negative, builtins)
        # Rule with a (possibly disjunctive) head.
        head = [self.atom()]
        while self.peek() == "|":
            self.take("|")
            head.append(self.atom())
        if self.peek() == ".":
            self.take(".")
            return AspRule(tuple(head))
        self.take(":-")
        positive, negative, builtins = self.body()
        self.take(".")
        return AspRule(tuple(head), positive, negative, builtins)


def parse_asp_program(text: str) -> AspProgram:
    """Parse a whole program (rules, constraints, weak constraints)."""
    parser = _AspParser(text)
    rules: List[AspRule] = []
    weak: List[WeakConstraint] = []
    while not parser.done():
        statement = parser.statement()
        if isinstance(statement, WeakConstraint):
            weak.append(statement)
        else:
            rules.append(statement)
    return AspProgram(tuple(rules), tuple(weak))


def parse_asp_rule(text: str) -> AspRule:
    """Parse a single rule or constraint."""
    parser = _AspParser(text)
    statement = parser.statement()
    if not parser.done():
        raise GroundingError(f"trailing input after rule in {text!r}")
    if isinstance(statement, WeakConstraint):
        raise GroundingError(
            "use parse_asp_program for weak constraints"
        )
    return statement
