"""Repair programs for interacting ICs: deletions *and* insertions.

Section 3.3 notes that when ICs interact — repair actions for one
affecting another, as with inclusion dependencies repaired by insertion —
the repair program "needs a couple of extra annotations to capture a
transition process" (Barceló & Bertossi [10, 11], the TPLP'03 programs).
This module implements that construction for denial-class constraints
combined with (possibly existential) inclusion dependencies under the
null-insertion semantics of Section 4.2:

* ``P__orig`` holds the given facts; ``P__del`` / ``P__ins`` are the
  repair actions; ``P__fin`` (the t**-style annotation) is the
  transition's outcome: original-and-not-deleted, or inserted;
* denial constraints fire on final atoms and offer deletions
  disjunctively;
* an inclusion dependency fires when its body survives and no *original
  surviving* head matches (``P__has``), offering to delete the body fact
  or insert the null-padded head — insertions feed other constraints
  through ``P__fin``, which is exactly the interaction the annotations
  exist to capture;
* hard constraints forbid deleting non-original or inserted facts.

Stable models correspond to the repairs of the deletion+null-insertion
semantics; the read-off applies a final ⊆-minimality filter (asserted to
be a no-op on all tested inputs, mirroring the classical one-to-one
theorem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..constraints.base import IntegrityConstraint
from ..constraints.denial import DenialConstraint
from ..constraints.fd import FunctionalDependency
from ..constraints.inclusion import (
    InclusionDependency,
    TupleGeneratingDependency,
)
from ..errors import SolverError
from ..logic.formulas import Atom, Comparison, Var, is_var
from ..logic.queries import ConjunctiveQuery
from ..relational.database import Database, Fact
from ..relational.nulls import NULL
from ..repairs.base import Repair, minimal_repairs, sort_repairs
from .reasoning import AnswerSet, Solver
from .syntax import AspProgram, AspRule, WeakConstraint, asp_fact


def _orig(p: str) -> str:
    return f"{p}__orig"


def _del(p: str) -> str:
    return f"{p}__del"


def _ins(p: str) -> str:
    return f"{p}__ins"


def _fin(p: str) -> str:
    return f"{p}__fin"


def _cand(p: str) -> str:
    return f"{p}__cand"


def _has(p: str, index: int) -> str:
    return f"{p}__has{index}"


@dataclass
class GeneralRepairProgram:
    """The annotated transition program for interacting ICs."""

    db: Database
    constraints: Tuple[IntegrityConstraint, ...]
    include_weak_constraints: bool = False

    def __post_init__(self) -> None:
        self.constraints = tuple(self.constraints)
        self._dcs: List[DenialConstraint] = []
        self._inds: List[TupleGeneratingDependency] = []
        for ic in self.constraints:
            if isinstance(ic, DenialConstraint):
                self._dcs.append(ic)
            elif isinstance(ic, FunctionalDependency):
                self._dcs.extend(ic.to_denial_constraints(self.db))
            elif isinstance(ic, InclusionDependency):
                self._inds.append(ic.to_tgd(self.db))
            elif isinstance(ic, TupleGeneratingDependency):
                self._validate_tgd(ic)
                self._inds.append(ic)
            else:
                raise SolverError(
                    f"unsupported constraint {type(ic).__name__} for the "
                    "general repair program"
                )
        self._program = self._compile()
        self._solver: Optional[Solver] = None

    @staticmethod
    def _validate_tgd(tgd: TupleGeneratingDependency) -> None:
        if len(tgd.body) != 1 or len(tgd.head) != 1:
            raise SolverError(
                "the general repair program supports inclusion-style tgds "
                "(one body atom, one head atom)"
            )
        existentials = tgd.existential_variables()
        seen = set()
        for t in tgd.head[0].terms:
            if is_var(t) and t in existentials:
                if t in seen:
                    raise SolverError(
                        "repeated existential head variables cannot be "
                        "satisfied by NULL insertion"
                    )
                seen.add(t)

    # ------------------------------------------------------------------

    def _compile(self) -> AspProgram:
        rules: List[AspRule] = []
        relations = self.db.schema.names()
        for relation in relations:
            arity = self.db.schema.relation(relation).arity
            values = tuple(Var(f"x{i}_") for i in range(arity))
            orig = Atom(_orig(relation), values)
            deleted = Atom(_del(relation), values)
            inserted = Atom(_ins(relation), values)
            final = Atom(_fin(relation), values)
            candidate = Atom(_cand(relation), values)
            # The t*-style annotation: original or inserted — the state
            # constraint bodies fire on, so that a deletion chosen by a
            # rule keeps supporting that very rule (stability).
            rules.append(AspRule((candidate,), (orig,)))
            rules.append(AspRule((candidate,), (inserted,)))
            # Transition outcome (t**): survive deletion, or be inserted.
            rules.append(AspRule((final,), (orig,), (deleted,)))
            rules.append(AspRule((final,), (inserted,)))
            # Only original facts are deletable; never delete insertions.
            rules.append(AspRule((), (deleted,), (orig,)))
            rules.append(AspRule((), (deleted, inserted)))
        for fact in sorted(self.db.facts(), key=repr):
            rules.append(
                asp_fact(Atom(_orig(fact.relation), fact.values))
            )
        for dc in self._dcs:
            rules.append(self._dc_rule(dc))
        for index, ind in enumerate(self._inds):
            rules.extend(self._ind_rules(ind, index))
        weak: List[WeakConstraint] = []
        if self.include_weak_constraints:
            # Example 4.2 generalized: penalize every repair action —
            # deletions and insertions alike — so the optimal stable
            # models are the C-repairs of the insertion semantics.
            for relation in relations:
                arity = self.db.schema.relation(relation).arity
                values = tuple(Var(f"x{i}_") for i in range(arity))
                weak.append(
                    WeakConstraint((Atom(_del(relation), values),))
                )
                weak.append(
                    WeakConstraint((Atom(_ins(relation), values),))
                )
        return AspProgram(tuple(rules), tuple(weak))

    def _dc_rule(self, dc: DenialConstraint) -> AspRule:
        body = tuple(
            Atom(_cand(a.predicate), a.terms) for a in dc.atoms
        )
        head = tuple(
            Atom(_del(a.predicate), a.terms) for a in dc.atoms
        )
        # Guard join/compared variables against NULL: the grounder treats
        # NULL as an ordinary constant, but under SQL semantics a NULL
        # (e.g. in a null-padded inserted tuple) never satisfies a join.
        counts: Dict[Var, int] = {}
        for a in dc.atoms:
            for t in a.terms:
                if is_var(t):
                    counts[t] = counts.get(t, 0) + 1
        compared = set()
        for c in dc.conditions:
            for t in (c.left, c.right):
                if is_var(t):
                    compared.add(t)
        guards = tuple(
            Comparison("!=", v, NULL)
            for v in sorted(counts, key=lambda w: w.name)
            if counts[v] > 1 or v in compared
        )
        return AspRule(head, body, (), tuple(dc.conditions) + guards)

    def _ind_rules(
        self, ind: TupleGeneratingDependency, index: int
    ) -> List[AspRule]:
        (body_atom,) = ind.body
        (head_atom,) = ind.head
        frontier = sorted(
            ind.body_variables() & head_atom.free_variables(),
            key=lambda v: v.name,
        )
        has = Atom(_has(head_atom.predicate, index), tuple(frontier))
        # The head is already satisfied by a *surviving original* fact:
        # P__has(frontier) ← P__orig(head terms with fresh existentials),
        #                    not P__del(same).
        fresh = {
            v: Var(f"e{index}_{i}_")
            for i, v in enumerate(
                sorted(ind.existential_variables(), key=lambda w: w.name)
            )
        }
        head_terms = tuple(
            fresh.get(t, t) if is_var(t) else t for t in head_atom.terms
        )
        has_rule = AspRule(
            (has,),
            (Atom(_orig(head_atom.predicate), head_terms),),
            (Atom(_del(head_atom.predicate), head_terms),),
        )
        # Null-padded insertion candidate.
        insert_terms = tuple(
            (NULL if (is_var(t) and t in fresh) else t)
            for t in head_atom.terms
        )
        # Guard: a body tuple with NULL at a frontier position satisfies
        # the dependency vacuously (SQL convention).
        guards = tuple(
            Comparison("!=", v, NULL) for v in frontier
        )
        violation_rule = AspRule(
            (
                Atom(_del(body_atom.predicate), body_atom.terms),
                Atom(_ins(head_atom.predicate), insert_terms),
            ),
            (Atom(_cand(body_atom.predicate), body_atom.terms),),
            (has,),
            guards,
        )
        return [has_rule, violation_rule]

    # ------------------------------------------------------------------

    @property
    def program(self) -> AspProgram:
        """The compiled transition program."""
        return self._program

    @property
    def solver(self) -> Solver:
        """The (cached) solver for the transition program."""
        if self._solver is None:
            self._solver = Solver(self._program)
        return self._solver

    def answer_sets(self) -> List[AnswerSet]:
        """All stable models."""
        return self.solver.answer_sets()

    def repairs(self) -> List[Repair]:
        """Repairs read off the final atoms of the stable models.

        A ⊆-minimality filter guards against redundant models; on every
        validated input it is a no-op (see tests), matching the classical
        correspondence theorems.
        """
        out: List[Repair] = []
        seen = set()
        for answer_set in self.answer_sets():
            kept: List[Fact] = []
            for relation in self.db.schema.names():
                for a in answer_set.with_predicate(_fin(relation)):
                    kept.append(Fact(relation, tuple(a.terms)))
            instance = self.db.delete(
                [f for f in self.db.facts() if f not in set(kept)]
            ).insert([f for f in kept if f not in self.db])
            key = instance.facts()
            if key not in seen:
                seen.add(key)
                out.append(Repair(self.db, instance))
        return sort_repairs(minimal_repairs(out))

    def c_repairs(self) -> List[Repair]:
        """C-repairs from the weak-constraint-optimal stable models.

        Requires ``include_weak_constraints=True``; mirrors Example 4.2
        for the interacting-IC semantics (insertions count too).
        """
        if not self.include_weak_constraints:
            raise SolverError(
                "compile with include_weak_constraints=True to get "
                "C-repairs"
            )
        out: List[Repair] = []
        seen = set()
        for answer_set in self.solver.optimal_answer_sets():
            kept: List[Fact] = []
            for relation in self.db.schema.names():
                for a in answer_set.with_predicate(_fin(relation)):
                    kept.append(Fact(relation, tuple(a.terms)))
            instance = self.db.delete(
                [f for f in self.db.facts() if f not in set(kept)]
            ).insert([f for f in kept if f not in self.db])
            key = instance.facts()
            if key not in seen:
                seen.add(key)
                out.append(Repair(self.db, instance))
        return sort_repairs(out)

    def stable_model_count(self) -> int:
        """Number of stable models (before the read-off minimal filter)."""
        return len(self.answer_sets())

    def consistent_answers(
        self, query: ConjunctiveQuery
    ) -> FrozenSet[Tuple]:
        """Certain answers over the repairs (cautious reasoning)."""
        result = None
        for repair in self.repairs():
            answers = frozenset(query.answers(repair.instance))
            result = answers if result is None else (result & answers)
            if not result:
                break
        if result is None:
            raise SolverError("the repair program has no stable models")
        return result
