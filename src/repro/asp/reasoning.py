"""Answer sets, brave/cautious reasoning, optimization, aggregation.

Wraps the ground solver with the operations the paper uses: reading
stable models as sets of ground atoms, ``⊨_brave`` / ``⊨_cautious``
query answering (Example 7.2), weak-constraint optimization (Example
4.2), and the ``#count`` aggregation used for responsibilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import SolverError
from ..logic.formulas import Atom, Var, is_var
from .grounding import GroundProgram, GroundWeakConstraint, ground_program
from .syntax import AspProgram
from .solver import stable_models


@dataclass(frozen=True)
class AnswerSet:
    """One stable model, as a set of ground atoms."""

    atoms: FrozenSet[Atom]

    def with_predicate(self, predicate: str) -> Tuple[Atom, ...]:
        """Atoms of one predicate, deterministically ordered."""
        return tuple(sorted(
            (a for a in self.atoms if a.predicate == predicate),
            key=repr,
        ))

    def matches(self, pattern: Atom) -> List[Dict[Var, object]]:
        """Bindings under which *pattern* matches an atom of the model."""
        out = []
        for a in self.with_predicate(pattern.predicate):
            binding = _match(pattern, a)
            if binding is not None:
                out.append(binding)
        return out

    def __contains__(self, a: Atom) -> bool:
        return a in self.atoms

    def __len__(self) -> int:
        return len(self.atoms)

    def __repr__(self) -> str:
        return "AnswerSet{" + ", ".join(
            repr(a) for a in sorted(self.atoms, key=repr)
        ) + "}"


def _match(pattern: Atom, ground: Atom) -> Optional[Dict[Var, object]]:
    if pattern.predicate != ground.predicate or pattern.arity != ground.arity:
        return None
    binding: Dict[Var, object] = {}
    for p, g in zip(pattern.terms, ground.terms):
        if is_var(p):
            if p in binding:
                if binding[p] != g:
                    return None
            else:
                binding[p] = g
        elif p != g:
            return None
    return binding


class Solver:
    """Grounds and solves a program; caches the answer sets.

    ``blocking_projection`` (optional) is a predicate over ground atoms
    selecting the *projected blocking* set — see
    :func:`repro.asp.solver.stable_models` for the soundness conditions
    it must guarantee.  Repair programs pass their deletion atoms.
    """

    def __init__(
        self,
        prog: AspProgram,
        blocking_projection=None,
    ) -> None:
        self._program = prog
        self._blocking_projection = blocking_projection
        self._ground: Optional[GroundProgram] = None
        self._answer_sets: Optional[List[AnswerSet]] = None

    @property
    def ground(self) -> GroundProgram:
        """The ground program (computed lazily, cached)."""
        if self._ground is None:
            self._ground = ground_program(self._program)
        return self._ground

    def answer_sets(self, limit: Optional[int] = None) -> List[AnswerSet]:
        """All answer sets (optionally capped at *limit*)."""
        if self._answer_sets is None or limit is not None:
            ground = self.ground
            blocking_atoms = None
            if self._blocking_projection is not None:
                blocking_atoms = frozenset(
                    i for i, a in enumerate(ground.atoms)
                    if self._blocking_projection(a)
                )
            models = stable_models(
                ground, limit=limit, blocking_atoms=blocking_atoms
            )
            sets = [
                AnswerSet(frozenset(ground.atoms[i] for i in m))
                for m in models
            ]
            if limit is None:
                self._answer_sets = sets
            return sets
        return self._answer_sets

    def optimal_answer_sets(self) -> List[AnswerSet]:
        """Answer sets minimizing weak-constraint violations.

        Costs are compared level-major (higher levels first), then by
        total weight within a level — the DLV convention.
        """
        sets = self.answer_sets()
        if not sets:
            return []
        ground = self.ground
        if not ground.weak_constraints:
            return sets
        scored = [
            (self._cost(ground.weak_constraints, s), s) for s in sets
        ]
        best = min(cost for cost, _ in scored)
        return [s for cost, s in scored if cost == best]

    def _cost(
        self,
        weak: Sequence[GroundWeakConstraint],
        answer_set: AnswerSet,
    ) -> Tuple:
        ground = self.ground
        true_indices = {
            ground.index[a] for a in answer_set.atoms if a in ground.index
        }
        by_level: Dict[int, int] = {}
        for wc in weak:
            if wc.positive <= true_indices and not (
                wc.negative & true_indices
            ):
                by_level[wc.level] = by_level.get(wc.level, 0) + wc.weight
        levels = sorted(by_level, reverse=True)
        return tuple((lvl, by_level[lvl]) for lvl in levels)

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------

    def brave(self, pattern: Atom, optimal_only: bool = False) -> Set[Tuple]:
        """Bindings of *pattern* true in *some* answer set (``⊨_brave``)."""
        sets = (
            self.optimal_answer_sets() if optimal_only else self.answer_sets()
        )
        out: Set[Tuple] = set()
        variables = _pattern_variables(pattern)
        for s in sets:
            for binding in s.matches(pattern):
                out.add(tuple(binding[v] for v in variables))
        return out

    def cautious(
        self, pattern: Atom, optimal_only: bool = False
    ) -> Set[Tuple]:
        """Bindings of *pattern* true in *every* answer set (``⊨_cautious``)."""
        sets = (
            self.optimal_answer_sets() if optimal_only else self.answer_sets()
        )
        if not sets:
            raise SolverError("the program has no answer sets")
        variables = _pattern_variables(pattern)
        result: Optional[Set[Tuple]] = None
        for s in sets:
            rows = {
                tuple(binding[v] for v in variables)
                for binding in s.matches(pattern)
            }
            result = rows if result is None else (result & rows)
            if not result:
                break
        return result if result is not None else set()

    def count_per_group(
        self,
        pattern: Atom,
        group_variables: Sequence[Var],
        optimal_only: bool = False,
    ) -> List[Dict[Tuple, int]]:
        """Per-answer-set ``#count`` aggregation.

        For each answer set, count the distinct bindings of *pattern*
        grouped by *group_variables* — the shape of the paper's
        ``preresp(t, n) ← #count{t' : CauCon(t, t')} = n`` rule.
        """
        sets = (
            self.optimal_answer_sets() if optimal_only else self.answer_sets()
        )
        out: List[Dict[Tuple, int]] = []
        for s in sets:
            groups: Dict[Tuple, Set[Tuple]] = {}
            for binding in s.matches(pattern):
                key = tuple(binding[v] for v in group_variables)
                rest = tuple(
                    binding[v]
                    for v in _pattern_variables(pattern)
                    if v not in group_variables
                )
                groups.setdefault(key, set()).add(rest)
            out.append({key: len(vals) for key, vals in groups.items()})
        return out


def _pattern_variables(pattern: Atom) -> Tuple[Var, ...]:
    seen: List[Var] = []
    for t in pattern.terms:
        if is_var(t) and t not in seen:
            seen.append(t)
    return tuple(seen)


def solve(prog: AspProgram, limit: Optional[int] = None) -> List[AnswerSet]:
    """All answer sets of *prog*."""
    return Solver(prog).answer_sets(limit=limit)
