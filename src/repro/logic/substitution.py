"""Substitutions, renaming, and unification for atoms and formulas.

Used by the residue-based rewriting of Section 2 (resolving a query atom
with a constraint clause leaves a residue under the most general unifier),
by the Datalog engine, and by the ASP grounder.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from .formulas import (
    And,
    Atom,
    Comparison,
    Exists,
    Forall,
    Formula,
    IsNull,
    Not,
    Or,
    Term,
    Var,
    is_var,
)

Substitution = Mapping[Var, Term]


def apply_to_term(term: Term, subst: Substitution) -> Term:
    """Apply a substitution to one term (identity on constants)."""
    while is_var(term) and term in subst:
        replacement = subst[term]
        if replacement == term:
            break
        term = replacement
    return term


def apply_to_atom(a: Atom, subst: Substitution) -> Atom:
    """Apply a substitution to an atom."""
    return Atom(a.predicate, tuple(apply_to_term(t, subst) for t in a.terms))


def apply_to_formula(f: Formula, subst: Substitution) -> Formula:
    """Apply a substitution to a formula (capture-avoiding for our use:
    quantified variables are never substituted)."""
    if isinstance(f, Atom):
        return apply_to_atom(f, subst)
    if isinstance(f, Comparison):
        return Comparison(
            f.op, apply_to_term(f.left, subst), apply_to_term(f.right, subst)
        )
    if isinstance(f, IsNull):
        return IsNull(apply_to_term(f.term, subst))
    if isinstance(f, And):
        return And(tuple(apply_to_formula(p, subst) for p in f.parts))
    if isinstance(f, Or):
        return Or(tuple(apply_to_formula(p, subst) for p in f.parts))
    if isinstance(f, Not):
        return Not(apply_to_formula(f.inner, subst))
    if isinstance(f, (Exists, Forall)):
        shielded = {
            v: t for v, t in subst.items() if v not in f.variables
        }
        inner = apply_to_formula(f.inner, shielded)
        cls = type(f)
        return cls(f.variables, inner)
    raise TypeError(f"unknown formula node {type(f).__name__}")


def rename_apart(
    f: Formula, taken: Iterable[Var], suffix: str = "_r"
) -> Tuple[Formula, Dict[Var, Var]]:
    """Rename the free variables of *f* away from *taken*.

    Returns the renamed formula and the renaming used.  Needed before
    unifying a query atom with a constraint clause so their variable
    spaces do not collide.
    """
    taken_names = {v.name for v in taken}
    renaming: Dict[Var, Var] = {}
    for v in sorted(f.free_variables(), key=lambda w: w.name):
        if v.name in taken_names:
            candidate = v.name + suffix
            counter = 0
            while candidate in taken_names:
                counter += 1
                candidate = f"{v.name}{suffix}{counter}"
            renaming[v] = Var(candidate)
            taken_names.add(candidate)
    return apply_to_formula(f, renaming), renaming


def unify_atoms(a: Atom, b: Atom) -> Optional[Dict[Var, Term]]:
    """Most general unifier of two atoms, or None.

    Constants unify only when equal; variables may bind to constants or
    other variables.  The atoms are assumed to have disjoint variable
    spaces when that matters (use :func:`rename_apart` first).
    """
    if a.predicate != b.predicate or a.arity != b.arity:
        return None
    subst: Dict[Var, Term] = {}

    def resolve(term: Term) -> Term:
        while is_var(term) and term in subst:
            term = subst[term]
        return term

    for left, right in zip(a.terms, b.terms):
        left, right = resolve(left), resolve(right)
        if left == right:
            continue
        if is_var(left):
            subst[left] = right
        elif is_var(right):
            subst[right] = left
        else:
            return None
    return subst


def match_atom(pattern: Atom, ground: Atom) -> Optional[Dict[Var, Term]]:
    """One-way matching: a substitution θ with pattern·θ == ground, or None.

    Unlike unification, the ground atom may not contain variables and the
    pattern's variables bind to the ground atom's constants.
    """
    if pattern.predicate != ground.predicate or pattern.arity != ground.arity:
        return None
    subst: Dict[Var, Term] = {}
    for p_term, g_term in zip(pattern.terms, ground.terms):
        if is_var(p_term):
            if p_term in subst:
                if subst[p_term] != g_term:
                    return None
            else:
                subst[p_term] = g_term
        elif p_term != g_term:
            return None
    return subst
