"""First-order terms and formulas over relational vocabularies.

The paper states queries and integrity constraints in first-order predicate
logic (conjunctive queries like (2), rewritten queries with negation like
(6), denial constraints like κ in Example 3.5).  This module provides the
abstract syntax; evaluation lives in :mod:`repro.logic.evaluation`.

Terms are either :class:`Var` or plain Python constants (strings, numbers,
the NULL marker, labeled nulls).  Formulas are immutable and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple, Union

Term = Union["Var", object]


@dataclass(frozen=True)
class Var:
    """A first-order variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


def vars_(names: str) -> Tuple[Var, ...]:
    """Build several variables at once: ``x, y = vars_('x y')``."""
    return tuple(Var(n) for n in names.split())


def is_var(term: Term) -> bool:
    """True when *term* is a variable."""
    return isinstance(term, Var)


class Formula:
    """Base class for first-order formulas."""

    def free_variables(self) -> FrozenSet[Var]:
        """The free variables of the formula."""
        raise NotImplementedError

    def atoms(self) -> Tuple["Atom", ...]:
        """All relational atoms occurring in the formula, in syntax order."""
        raise NotImplementedError


@dataclass(frozen=True)
class Atom(Formula):
    """A relational atom ``R(t1, ..., tk)``."""

    predicate: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.predicate}({inner})"

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset(t for t in self.terms if is_var(t))

    def atoms(self) -> Tuple["Atom", ...]:
        return (self,)

    @property
    def arity(self) -> int:
        return len(self.terms)


def atom(predicate: str, *terms: Term) -> Atom:
    """Convenience constructor for atoms."""
    return Atom(predicate, tuple(terms))


_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison(Formula):
    """A comparison atom ``t1 op t2`` with SQL null semantics.

    Any comparison involving NULL is false — including ``NULL = NULL`` and
    ``NULL != NULL`` — mirroring SQL's unknown-collapses-to-false behaviour
    in the paper's attribute-repair semantics (Section 4.3).
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"

    def free_variables(self) -> FrozenSet[Var]:
        out = set()
        if is_var(self.left):
            out.add(self.left)
        if is_var(self.right):
            out.add(self.right)
        return frozenset(out)

    def atoms(self) -> Tuple[Atom, ...]:
        return ()


def eq(left: Term, right: Term) -> Comparison:
    """``left = right``."""
    return Comparison("=", left, right)


def neq(left: Term, right: Term) -> Comparison:
    """``left != right``."""
    return Comparison("!=", left, right)


@dataclass(frozen=True)
class IsNull(Formula):
    """``term IS NULL`` — the only way to observe NULL positively."""

    term: Term

    def __repr__(self) -> str:
        return f"IsNull({self.term!r})"

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset([self.term]) if is_var(self.term) else frozenset()

    def atoms(self) -> Tuple[Atom, ...]:
        return ()


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of sub-formulas."""

    parts: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.parts, tuple):
            object.__setattr__(self, "parts", tuple(self.parts))

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(p) for p in self.parts) + ")"

    def free_variables(self) -> FrozenSet[Var]:
        out: FrozenSet[Var] = frozenset()
        for p in self.parts:
            out |= p.free_variables()
        return out

    def atoms(self) -> Tuple[Atom, ...]:
        out: Tuple[Atom, ...] = ()
        for p in self.parts:
            out += p.atoms()
        return out


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of sub-formulas."""

    parts: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.parts, tuple):
            object.__setattr__(self, "parts", tuple(self.parts))

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(p) for p in self.parts) + ")"

    def free_variables(self) -> FrozenSet[Var]:
        out: FrozenSet[Var] = frozenset()
        for p in self.parts:
            out |= p.free_variables()
        return out

    def atoms(self) -> Tuple[Atom, ...]:
        out: Tuple[Atom, ...] = ()
        for p in self.parts:
            out += p.atoms()
        return out


@dataclass(frozen=True)
class Not(Formula):
    """Negation of a sub-formula."""

    inner: Formula

    def __repr__(self) -> str:
        return f"~{self.inner!r}"

    def free_variables(self) -> FrozenSet[Var]:
        return self.inner.free_variables()

    def atoms(self) -> Tuple[Atom, ...]:
        return self.inner.atoms()


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over one or more variables."""

    variables: Tuple[Var, ...]
    inner: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, "variables", tuple(self.variables))

    def __repr__(self) -> str:
        quantified = " ".join(v.name for v in self.variables)
        return f"(exists {quantified}: {self.inner!r})"

    def free_variables(self) -> FrozenSet[Var]:
        return self.inner.free_variables() - frozenset(self.variables)

    def atoms(self) -> Tuple[Atom, ...]:
        return self.inner.atoms()


@dataclass(frozen=True)
class Forall(Formula):
    """Universal quantification; evaluated as ``¬∃x¬φ``."""

    variables: Tuple[Var, ...]
    inner: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, "variables", tuple(self.variables))

    def __repr__(self) -> str:
        quantified = " ".join(v.name for v in self.variables)
        return f"(forall {quantified}: {self.inner!r})"

    def free_variables(self) -> FrozenSet[Var]:
        return self.inner.free_variables() - frozenset(self.variables)

    def atoms(self) -> Tuple[Atom, ...]:
        return self.inner.atoms()


TRUE = And(())
FALSE = Or(())


def conj(parts: Iterable[Formula]) -> Formula:
    """Conjunction, flattening nested Ands and simplifying singletons."""
    flat = []
    for p in parts:
        if isinstance(p, And):
            flat.extend(p.parts)
        else:
            flat.append(p)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(parts: Iterable[Formula]) -> Formula:
    """Disjunction, flattening nested Ors and simplifying singletons."""
    flat = []
    for p in parts:
        if isinstance(p, Or):
            flat.extend(p.parts)
        else:
            flat.append(p)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def node_count(formula: Formula) -> int:
    """Number of connective/literal nodes in a formula tree.

    The size measure reported by the rewriters (counter
    ``cqa.rewrite_nodes``): rewriting-based CQA is polynomial exactly
    because this quantity stays polynomial in the query, independent of
    the instance.
    """
    if isinstance(formula, (And, Or)):
        return 1 + sum(node_count(p) for p in formula.parts)
    if isinstance(formula, (Not, Exists, Forall)):
        return 1 + node_count(formula.inner)
    return 1
