"""Query objects: generic FO queries, conjunctive queries, and unions.

A :class:`Query` pairs a tuple of head (answer) variables with a body
formula; body variables not in the head are implicitly existentially
quantified, exactly as in the paper's notation ``Q(z): ∃x∃y Supply(x,y,z)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Sequence, Tuple

from ..errors import QueryError
from ..relational.database import Database, Row
from ..relational.nulls import is_labeled_null
from .evaluation import Evaluator
from .formulas import Atom, Comparison, Formula, Var, conj, is_var


@dataclass(frozen=True)
class Query:
    """A first-order query ``Q(head_vars): body``.

    ``answers(db)`` returns the set of head-variable tuples for which the
    body holds; a query with no head variables is Boolean and ``holds(db)``
    reports its truth value.
    """

    head: Tuple[Var, ...]
    body: Formula
    name: str = "Q"

    def __post_init__(self) -> None:
        if not isinstance(self.head, tuple):
            object.__setattr__(self, "head", tuple(self.head))
        missing = [
            v for v in self.head if v not in self.body.free_variables()
        ]
        if missing:
            raise QueryError(
                f"head variables {missing} do not occur free in the body"
            )

    @property
    def is_boolean(self) -> bool:
        """True for Boolean (closed) queries."""
        return not self.head

    def answers(self, db: Database) -> FrozenSet[Row]:
        """The set of answers ``Q(db)``."""
        evaluator = Evaluator(db)
        out = set()
        for binding in evaluator.bindings(self.body):
            try:
                row = tuple(binding[v] for v in self.head)
            except KeyError:
                raise QueryError(
                    f"unsafe query {self.name}: a satisfying binding does "
                    f"not bind all head variables {self.head}"
                ) from None
            out.add(row)
        return frozenset(out)

    def certain_rows(self, db: Database) -> FrozenSet[Row]:
        """Answers without labeled nulls (certain-answer filtering)."""
        return frozenset(
            row
            for row in self.answers(db)
            if not any(is_labeled_null(v) for v in row)
        )

    def holds(self, db: Database) -> bool:
        """Truth value for Boolean queries (any-answer check otherwise)."""
        evaluator = Evaluator(db)
        return evaluator.holds(self.body)

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        return f"{self.name}({head}): {self.body!r}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: head variables, relational atoms, comparisons.

    This is the fragment most of the paper's machinery targets (CQA
    complexity, FO rewriting, causality for BCQs).  It exposes its atoms
    structurally — needed by rewriting and by the repair/causality
    connection — and converts to a generic :class:`Query` for evaluation.
    """

    head: Tuple[Var, ...]
    atoms: Tuple[Atom, ...]
    conditions: Tuple[Comparison, ...] = field(default_factory=tuple)
    name: str = "Q"

    def __post_init__(self) -> None:
        if not isinstance(self.head, tuple):
            object.__setattr__(self, "head", tuple(self.head))
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))
        if not isinstance(self.conditions, tuple):
            object.__setattr__(self, "conditions", tuple(self.conditions))
        if not self.atoms:
            raise QueryError("a conjunctive query needs at least one atom")
        body_vars = self.variables()
        for v in self.head:
            if v not in body_vars:
                raise QueryError(
                    f"head variable {v} does not occur in the body"
                )

    def variables(self) -> FrozenSet[Var]:
        """All variables of the query body."""
        out = set()
        for a in self.atoms:
            out |= a.free_variables()
        for c in self.conditions:
            out |= c.free_variables()
        return frozenset(out)

    def existential_variables(self) -> FrozenSet[Var]:
        """Body variables not exported in the head."""
        return self.variables() - frozenset(self.head)

    @property
    def is_boolean(self) -> bool:
        """True for Boolean conjunctive queries (BCQs)."""
        return not self.head

    def has_self_join(self) -> bool:
        """True when some predicate occurs in two atoms."""
        predicates = [a.predicate for a in self.atoms]
        return len(predicates) != len(set(predicates))

    def body(self) -> Formula:
        """The body as a conjunction formula."""
        return conj(tuple(self.atoms) + tuple(self.conditions))

    def to_query(self) -> Query:
        """The equivalent generic :class:`Query`."""
        return Query(self.head, self.body(), name=self.name)

    def answers(self, db: Database) -> FrozenSet[Row]:
        """Evaluate the query on an instance."""
        return self.to_query().answers(db)

    def holds(self, db: Database) -> bool:
        """Truth value on an instance (any-answer for non-Boolean)."""
        return self.to_query().holds(db)

    def instantiate(self, answer: Row) -> "ConjunctiveQuery":
        """The Boolean query asking whether *answer* is an answer.

        Used by causality: causes for answer ā to Q(x̄) are causes for the
        BCQ Q[x̄ := ā].
        """
        if len(answer) != len(self.head):
            raise QueryError(
                f"answer arity {len(answer)} != head arity {len(self.head)}"
            )
        subst = dict(zip(self.head, answer))

        def instantiate_terms(terms: Iterable[object]) -> Tuple[object, ...]:
            return tuple(
                subst.get(t, t) if is_var(t) else t for t in terms
            )

        new_atoms = tuple(
            Atom(a.predicate, instantiate_terms(a.terms)) for a in self.atoms
        )
        new_conditions = tuple(
            Comparison(
                c.op,
                subst.get(c.left, c.left) if is_var(c.left) else c.left,
                subst.get(c.right, c.right) if is_var(c.right) else c.right,
            )
            for c in self.conditions
        )
        return ConjunctiveQuery(
            (), new_atoms, new_conditions, name=f"{self.name}[{answer}]"
        )

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        parts = [repr(a) for a in self.atoms] + [repr(c) for c in self.conditions]
        return f"{self.name}({head}) :- {', '.join(parts)}"


def cq(
    head: Sequence[Var],
    atoms: Sequence[Atom],
    conditions: Sequence[Comparison] = (),
    name: str = "Q",
) -> ConjunctiveQuery:
    """Convenience constructor for conjunctive queries."""
    return ConjunctiveQuery(tuple(head), tuple(atoms), tuple(conditions), name)


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries (UCQ) with a common head arity."""

    disjuncts: Tuple[ConjunctiveQuery, ...]
    name: str = "Q"

    def __post_init__(self) -> None:
        if not isinstance(self.disjuncts, tuple):
            object.__setattr__(self, "disjuncts", tuple(self.disjuncts))
        if not self.disjuncts:
            raise QueryError("a UCQ needs at least one disjunct")
        arities = {len(d.head) for d in self.disjuncts}
        if len(arities) != 1:
            raise QueryError(f"UCQ disjuncts disagree on head arity: {arities}")

    @property
    def is_boolean(self) -> bool:
        """True for Boolean UCQs."""
        return not self.disjuncts[0].head

    def answers(self, db: Database) -> FrozenSet[Row]:
        """Union of the disjuncts' answers."""
        out: FrozenSet[Row] = frozenset()
        for d in self.disjuncts:
            out |= d.answers(db)
        return out

    def holds(self, db: Database) -> bool:
        """Truth on an instance."""
        return any(d.holds(db) for d in self.disjuncts)


def boolean_query(atoms: Sequence[Atom],
                  conditions: Sequence[Comparison] = (),
                  name: str = "Q") -> ConjunctiveQuery:
    """A Boolean conjunctive query over the given atoms."""
    return ConjunctiveQuery((), tuple(atoms), tuple(conditions), name)
