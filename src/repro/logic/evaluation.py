"""Active-domain evaluation of first-order formulas over an instance.

Evaluation follows the semantics the paper relies on:

* conjunctive queries evaluate by pattern matching and joins;
* negation, universal quantification, and comparisons evaluate under the
  active-domain (safe-range) semantics — rewritten queries such as (6) in
  Example 3.4 use ``NOT EXISTS`` subqueries, which evaluate as boolean
  checks once their free variables are bound;
* the single NULL follows SQL semantics (Sections 4.2–4.3): it never
  satisfies a join or comparison, not even with itself;
* labeled nulls (naive tables, used by LAV integration) *do* join with
  equally-labeled nulls.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..relational.database import Database, Fact
from ..relational.nulls import is_labeled_null, is_null
from .formulas import (
    And,
    Atom,
    Comparison,
    Exists,
    Forall,
    Formula,
    IsNull,
    Not,
    Or,
    Var,
    is_var,
)

Binding = Dict[Var, object]


def _joinable(left: object, right: object) -> bool:
    """Can two values satisfy an equality join?  NULL never joins."""
    if is_null(left) or is_null(right):
        return False
    return left == right


def _match_fact(
    pattern: Atom, values: Tuple[object, ...], binding: Binding
) -> Optional[Binding]:
    """Extend *binding* so the atom pattern matches a fact's values.

    Returns None when matching fails.  A variable's *first* occurrence may
    bind to NULL (SQL rows with nulls are still rows), but any further use
    of that variable — in this atom or elsewhere — fails, because NULL
    never joins.
    """
    local = dict(binding)
    for term, value in zip(pattern.terms, values):
        if is_var(term):
            if term in local:
                if not _joinable(local[term], value):
                    return None
            else:
                local[term] = value
        else:
            if not _joinable(term, value):
                return None
    return local


def _compare(op: str, left: object, right: object) -> bool:
    """Evaluate a comparison with SQL null semantics."""
    if is_null(left) or is_null(right):
        return False
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if is_labeled_null(left) or is_labeled_null(right):
        return False
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        # Incomparable value types: order comparisons are false, like
        # SQL engines rejecting mixed-type comparisons conservatively.
        return False
    raise QueryError(f"unknown comparison operator {op!r}")


def _is_decided(formula: Formula, binding: Binding) -> bool:
    """True when every free variable of *formula* is bound."""
    return all(v in binding for v in formula.free_variables())


class Evaluator:
    """Evaluates formulas over one database instance."""

    def __init__(self, db: Database) -> None:
        self._db = db
        self._domain: Optional[List[object]] = None

    def _active_domain(self) -> List[object]:
        if self._domain is None:
            self._domain = sorted(self._db.active_domain(), key=repr)
        return self._domain

    # ------------------------------------------------------------------

    def bindings(
        self, formula: Formula, binding: Optional[Binding] = None
    ) -> Iterator[Binding]:
        """All extensions of *binding* satisfying *formula*."""
        if binding is None:
            binding = {}
        yield from self._eval(formula, binding)

    def holds(
        self, formula: Formula, binding: Optional[Binding] = None
    ) -> bool:
        """Boolean satisfaction under *binding*."""
        for _ in self.bindings(formula, binding):
            return True
        return False

    # ------------------------------------------------------------------

    def _eval(self, formula: Formula, binding: Binding) -> Iterator[Binding]:
        if isinstance(formula, Atom):
            yield from self._eval_atom(formula, binding)
        elif isinstance(formula, Comparison):
            yield from self._eval_comparison(formula, binding)
        elif isinstance(formula, IsNull):
            yield from self._eval_isnull(formula, binding)
        elif isinstance(formula, And):
            yield from self._eval_and(list(formula.parts), binding)
        elif isinstance(formula, Or):
            for part in formula.parts:
                yield from self._eval(part, binding)
        elif isinstance(formula, Not):
            yield from self._eval_not(formula, binding)
        elif isinstance(formula, Exists):
            yield from self._eval_exists(formula, binding)
        elif isinstance(formula, Forall):
            rewritten = Not(Exists(formula.variables, Not(formula.inner)))
            yield from self._eval(rewritten, binding)
        else:
            raise QueryError(f"cannot evaluate {type(formula).__name__}")

    def _eval_atom(self, a: Atom, binding: Binding) -> Iterator[Binding]:
        for values in self._db.relation(a.predicate):
            extended = _match_fact(a, values, binding)
            if extended is not None:
                yield extended

    def _eval_comparison(
        self, cmp: Comparison, binding: Binding
    ) -> Iterator[Binding]:
        free = [v for v in (cmp.left, cmp.right) if is_var(v) and v not in binding]
        if free:
            # Unsafe comparison: fall back to active-domain enumeration.
            yield from self._enumerate_then(cmp, free, binding)
            return
        left = binding[cmp.left] if is_var(cmp.left) else cmp.left
        right = binding[cmp.right] if is_var(cmp.right) else cmp.right
        if _compare(cmp.op, left, right):
            yield binding

    def _eval_isnull(self, f: IsNull, binding: Binding) -> Iterator[Binding]:
        if is_var(f.term) and f.term not in binding:
            yield from self._enumerate_then(f, [f.term], binding)
            return
        value = binding[f.term] if is_var(f.term) else f.term
        if is_null(value):
            yield binding

    def _eval_not(self, f: Not, binding: Binding) -> Iterator[Binding]:
        unbound = [v for v in f.free_variables() if v not in binding]
        if unbound:
            yield from self._enumerate_then(f, unbound, binding)
            return
        if not self.holds(f.inner, binding):
            yield binding

    def _eval_exists(self, f: Exists, binding: Binding) -> Iterator[Binding]:
        # Quantified variables open a fresh scope: shadow any outer binding.
        outer_values = {
            v: binding[v] for v in f.variables if v in binding
        }
        inner_binding = {
            v: val for v, val in binding.items() if v not in f.variables
        }
        seen = set()
        for result in self._eval(f.inner, inner_binding):
            projected = {
                v: val for v, val in result.items() if v not in f.variables
            }
            projected.update(outer_values)
            key = tuple(sorted(
                ((v.name, repr(val)) for v, val in projected.items())
            ))
            if key not in seen:
                seen.add(key)
                yield projected

    def _eval_and(
        self, parts: List[Formula], binding: Binding
    ) -> Iterator[Binding]:
        if not parts:
            yield binding
            return
        index = self._pick_conjunct(parts, binding)
        if index is None:
            # No conjunct is directly evaluable: enumerate one unbound
            # variable over the active domain (active-domain semantics).
            unbound = sorted(
                {
                    v
                    for p in parts
                    for v in p.free_variables()
                    if v not in binding
                },
                key=lambda v: v.name,
            )
            if not unbound:
                raise QueryError(
                    f"conjunction cannot be evaluated: {parts}"
                )
            target = unbound[0]
            for value in self._active_domain():
                extended = dict(binding)
                extended[target] = value
                yield from self._eval_and(parts, extended)
            return
        chosen = parts[index]
        rest = parts[:index] + parts[index + 1:]
        for extended in self._eval(chosen, binding):
            yield from self._eval_and(rest, extended)

    def _pick_conjunct(
        self, parts: Sequence[Formula], binding: Binding
    ) -> Optional[int]:
        """Choose the next conjunct to evaluate.

        Preference order: decided filters (cheap boolean checks), then
        atoms (binding generators, most-bound first), then generative
        sub-formulas (Exists/Or/And).  Returns None when nothing is
        directly evaluable, triggering the active-domain fallback.
        """
        best_atom = None
        best_bound = -1
        generative = None
        for i, part in enumerate(parts):
            if isinstance(part, (Comparison, IsNull, Not, Forall)):
                if _is_decided(part, binding):
                    return i
            elif isinstance(part, Atom):
                bound = sum(
                    1
                    for t in part.terms
                    if not is_var(t) or t in binding
                )
                if bound > best_bound:
                    best_bound = bound
                    best_atom = i
            elif isinstance(part, (Exists, Or, And)):
                if generative is None:
                    generative = i
        if best_atom is not None:
            return best_atom
        return generative

    def _enumerate_then(
        self, formula: Formula, unbound: Sequence[Var], binding: Binding
    ) -> Iterator[Binding]:
        """Bind *unbound* variables over the active domain, then re-evaluate."""
        def recurse(i: int, current: Binding) -> Iterator[Binding]:
            if i == len(unbound):
                yield from self._eval(formula, current)
                return
            for value in self._active_domain():
                extended = dict(current)
                extended[unbound[i]] = value
                yield from recurse(i + 1, extended)

        yield from recurse(0, binding)


def evaluate(db: Database, formula: Formula) -> bool:
    """Is the (sentence) *formula* true in *db*?"""
    return Evaluator(db).holds(formula)


def satisfying_bindings(
    db: Database, formula: Formula
) -> List[Binding]:
    """All satisfying bindings of *formula*'s free variables in *db*."""
    return list(Evaluator(db).bindings(formula))


def witnesses(
    db: Database,
    atoms: Sequence[Atom],
    conditions: Sequence[Formula] = (),
) -> List[Tuple[Binding, Tuple[Fact, ...]]]:
    """Satisfying bindings of a conjunction of atoms, with witnessing facts.

    Used by violation detection and causality: each result pairs a binding
    with the facts instantiating each atom under it.  *conditions* are extra
    filters (comparisons) conjoined with the atoms.
    """
    evaluator = Evaluator(db)
    results = []
    seen = set()
    for binding in evaluator.bindings(And(tuple(atoms) + tuple(conditions))):
        facts = []
        for a in atoms:
            values = tuple(
                binding[t] if is_var(t) else t for t in a.terms
            )
            facts.append(Fact(a.predicate, values))
        key = (
            tuple(sorted(((v.name, repr(val)) for v, val in binding.items()))),
        )
        if key not in seen:
            seen.add(key)
            results.append((binding, tuple(facts)))
    return results
