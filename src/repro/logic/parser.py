"""A small text syntax for queries and constraints.

Lets examples and tests write the paper's artifacts the way the paper
does, without building ASTs by hand::

    parse_query("Q(Z) :- Supply(X, Y, Z)")
    parse_query("Q(X, Y) :- Employee(X, Y), X != Y")
    parse_denial(":- S(X), R(X, Y), S(Y)")
    parse_fd("Employee: Name -> Salary")
    parse_inclusion("Supply[Item] <= Articles[Item]")

Conventions: identifiers starting with an uppercase letter inside an
atom's argument list are variables only if they are single tokens that
start uppercase — following Datalog, ``X``/``Name1`` are variables, and
constants are numbers or quoted strings (``'I1'`` or ``"I1"``).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import QueryError
from .formulas import Atom, Comparison, Var
from .queries import ConjunctiveQuery

_TOKEN = re.compile(
    r"""
    \s*(
        :-                 |
        <=                 |
        !=|>=|<>|=|<|>     |
        ->                 |
        [(),\[\]:]         |
        '[^']*'            |
        "[^"]*"            |
        -?\d+\.\d+         |
        -?\d+              |
        [A-Za-z_][A-Za-z_0-9]*
    )
    """,
    re.VERBOSE,
)

_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            if text[position:].strip():
                raise QueryError(
                    f"cannot tokenize {text[position:position + 20]!r}"
                )
            break
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0
        self._text = text

    def peek(self) -> Optional[str]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def take(self, expected: Optional[str] = None) -> str:
        token = self.peek()
        if token is None:
            raise QueryError(
                f"unexpected end of input in {self._text!r}"
            )
        if expected is not None and token != expected:
            raise QueryError(
                f"expected {expected!r}, found {token!r} in {self._text!r}"
            )
        self._index += 1
        return token

    def done(self) -> bool:
        return self._index >= len(self._tokens)

    # ------------------------------------------------------------------

    def term(self) -> object:
        token = self.take()
        if token.startswith(("'", '"')):
            return token[1:-1]
        if re.fullmatch(r"-?\d+", token):
            return int(token)
        if re.fullmatch(r"-?\d+\.\d+", token):
            return float(token)
        if token[0].isupper() or token[0] == "_":
            return Var(token)
        # Bare lowercase identifiers are string constants (Datalog style).
        return token

    def atom(self) -> Atom:
        name = self.take()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", name):
            raise QueryError(f"bad predicate name {name!r}")
        self.take("(")
        terms: List[object] = []
        if self.peek() != ")":
            terms.append(self.term())
            while self.peek() == ",":
                self.take(",")
                terms.append(self.term())
        self.take(")")
        return Atom(name, tuple(terms))

    def body(self) -> Tuple[Tuple[Atom, ...], Tuple[Comparison, ...]]:
        atoms: List[Atom] = []
        comparisons: List[Comparison] = []
        while True:
            self._body_item(atoms, comparisons)
            if self.peek() == ",":
                self.take(",")
                continue
            break
        return tuple(atoms), tuple(comparisons)

    def _body_item(self, atoms, comparisons) -> None:
        # Lookahead: ``ident (`` is an atom, otherwise a comparison.
        saved = self._index
        first = self.take()
        nxt = self.peek()
        self._index = saved
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", first) and nxt == "(":
            atoms.append(self.atom())
            return
        left = self.term()
        op = self.take()
        if op not in _COMPARISON_OPS:
            raise QueryError(
                f"expected a comparison operator, found {op!r}"
            )
        if op == "<>":
            op = "!="
        right = self.term()
        comparisons.append(Comparison(op, left, right))


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse ``Name(heads) :- atoms, comparisons`` into a CQ."""
    parser = _Parser(text)
    head_atom = parser.atom()
    for t in head_atom.terms:
        if not isinstance(t, Var):
            raise QueryError(
                f"head argument {t!r} is not a variable in {text!r}"
            )
    parser.take(":-")
    atoms, comparisons = parser.body()
    if not parser.done():
        raise QueryError(f"trailing input after body in {text!r}")
    return ConjunctiveQuery(
        tuple(head_atom.terms), atoms, comparisons, name=head_atom.predicate
    )


def parse_denial(text: str, name: str = "DC"):
    """Parse ``:- atoms, comparisons`` into a denial constraint."""
    from ..constraints.denial import DenialConstraint

    parser = _Parser(text)
    parser.take(":-")
    atoms, comparisons = parser.body()
    if not parser.done():
        raise QueryError(f"trailing input in {text!r}")
    return DenialConstraint(atoms, comparisons, name=name)


def parse_fd(text: str, name: Optional[str] = None):
    """Parse ``Relation: A, B -> C, D`` into a functional dependency."""
    from ..constraints.fd import FunctionalDependency

    parser = _Parser(text)
    relation = parser.take()
    parser.take(":")
    lhs = [parser.take()]
    while parser.peek() == ",":
        parser.take(",")
        lhs.append(parser.take())
    parser.take("->")
    rhs = [parser.take()]
    while parser.peek() == ",":
        parser.take(",")
        rhs.append(parser.take())
    if not parser.done():
        raise QueryError(f"trailing input in {text!r}")
    return FunctionalDependency(
        relation, tuple(lhs), tuple(rhs),
        name=name or f"FD[{relation}]",
    )


def parse_inclusion(text: str, name: Optional[str] = None):
    """Parse ``Child[A, B] <= Parent[C, D]`` into an inclusion dependency."""
    from ..constraints.inclusion import InclusionDependency

    parser = _Parser(text)

    def side() -> Tuple[str, Tuple[str, ...]]:
        relation = parser.take()
        parser.take("[")
        attrs = [parser.take()]
        while parser.peek() == ",":
            parser.take(",")
            attrs.append(parser.take())
        parser.take("]")
        return relation, tuple(attrs)

    child, child_attrs = side()
    parser.take("<=")
    parent, parent_attrs = side()
    if not parser.done():
        raise QueryError(f"trailing input in {text!r}")
    return InclusionDependency(
        child, child_attrs, parent, parent_attrs,
        name=name or f"IND[{child}->{parent}]",
    )
