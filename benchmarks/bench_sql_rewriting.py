"""B6 — the ConQuer substitute: rewritten SQL on SQLite vs in-memory.

Example 3.4's point is that FO-rewritten queries run on any SQL engine.
These benchmarks compile Fuxman–Miller rewritings to SQL, execute them on
SQLite, and compare cost and results with the in-memory safe-range
evaluator on growing instances.
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.cqa import answers_via_sql, fuxman_miller_rewrite, query_to_sql
from repro.logic import atom, cq, vars_
from repro.relational.sqlbridge import run_sql_on_connection, to_sqlite
from repro.workloads import random_fd_instance

X, Y = vars_("x y")
FULL = cq([X, Y], [atom("R", X, Y)], name="full")


def _rewritten(scenario):
    return fuxman_miller_rewrite(FULL, scenario.constraints, scenario.db)


@pytest.mark.parametrize("n", [20, 60, 120])
def test_in_memory_evaluation(benchmark, n):
    scenario = random_fd_instance(n, n // 2, 3, seed=2)
    rewritten = _rewritten(scenario)
    answers = benchmark(rewritten.answers, scenario.db)
    assert answers == answers_via_sql(scenario.db, rewritten)


@pytest.mark.parametrize("n", [20, 60, 120])
def test_sqlite_evaluation_cold(benchmark, n):
    """Includes materialization: build the SQLite DB, then query."""
    scenario = random_fd_instance(n, n // 2, 3, seed=2)
    rewritten = _rewritten(scenario)
    answers = benchmark(answers_via_sql, scenario.db, rewritten)
    assert answers == rewritten.answers(scenario.db)


@pytest.mark.parametrize("n", [20, 60, 120])
def test_sqlite_evaluation_warm(benchmark, n):
    """Query-only cost on a pre-materialized connection."""
    scenario = random_fd_instance(n, n // 2, 3, seed=2)
    rewritten = _rewritten(scenario)
    sql = query_to_sql(rewritten, scenario.db.schema)
    conn = to_sqlite(scenario.db)
    try:
        rows = benchmark(run_sql_on_connection, conn, sql)
    finally:
        conn.close()
    assert frozenset(rows) == rewritten.answers(scenario.db)


def test_sql_generation_cost(benchmark):
    scenario = random_fd_instance(40, 20, 3, seed=2)
    sql = benchmark(
        query_to_sql, _rewritten(scenario), scenario.db.schema
    )
    assert "NOT" in sql


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
