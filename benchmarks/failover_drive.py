"""CI failover driver: kill -9 the primary, promote, lose nothing.

The drive is one cycle of the replication contract, end to end,
against real server processes:

1. **Topology** — start one primary (``repro serve --data-dir``) and
   two followers (``repro serve --follower-of``), each with its own
   durable directory, and wait for the followers to bootstrap off the
   stream and reach ``ready``.
2. **Storm** — fire a mutation storm at the primary, recording every
   *acknowledged* row (a 200 carrying an ``lsn``), while issuing
   read-your-writes reads (``min_lsn`` = last acked LSN) against the
   followers.  Every follower read must either honour the bound
   (``as_of_lsn >= min_lsn``) or shed with a typed ``stale-read`` 503
   — a 200 below the bound is a staleness-contract violation.
3. **Kill & promote** — quiesce (both followers caught up to the max
   acked LSN), SIGKILL the primary mid-flight with no drain, pick the
   most-caught-up follower, and ``POST /v1/replica/promote`` it.  The
   new primary must hold *every* acknowledged row and accept writes
   stamped with the bumped epoch.
4. **Fence the ghost** — restart the old primary from its directory
   (it still believes it leads at the stale epoch), fence it with the
   new epoch, and verify its mutations are refused: the split-brain
   window is closed by the epoch, not by an operator being quick.
5. **SLO** — evaluate the promotion-time objective
   (``replica-promotion-p99``) against the new primary's ``/status``.

Exit codes: 0 clean; 9 (EXIT_UNSOUND) on any acknowledged-then-lost
mutation or any read served below its requested ``min_lsn``; 7
(EXIT_SLO_VIOLATION) on a promotion-time SLO breach; 1 on any other
gate failure.

Run locally::

    PYTHONPATH=src python benchmarks/failover_drive.py --seed 7
"""

import argparse
import http.client
import json
import os
import pathlib
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_SRC = str(_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability.live.slo import (
    EXIT_SLO_VIOLATION,
    evaluate_slos,
    load_slo_config,
    render_slo,
)
from repro.serve.loadgen import EXIT_UNSOUND

EMPLOYEE_SPEC = {
    "relations": {
        "Employee": {
            "columns": ["Name", "Salary"],
            "key": ["Name"],
            "rows": [
                ["page", "5K"],
                ["page", "8K"],
                ["smith", "3K"],
                ["stowe", "7K"],
            ],
        },
        "Audit": {"columns": ["K", "V"], "rows": []},
    },
    "constraints": {"fd": ["Employee: Name -> Salary"]},
}

READ_QUERY = "Q(K) :- Audit(K, V)"


def _fail(message: str, code: int = 1) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return code


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn(port: int, data_dir: str, extra=(), telemetry=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC] + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", str(port),
        "--workers", "0",
        "--data-dir", data_dir,
        "--fsync", "always",
    ]
    if telemetry:
        # The live plane (and with it the replica.promotion_ms
        # histogram the SLO reads) only exists under --telemetry.
        command += ["--telemetry", telemetry]
    command += list(extra)
    return subprocess.Popen(command, env=env)


def _request(port, method, path, payload=None, timeout=10.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        raw = response.read()
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            parsed = {}
        return response.status, parsed
    finally:
        conn.close()


def _wait_ready(port, deadline_s=90.0, label="server"):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        try:
            status, _ = _request(port, "GET", "/healthz", timeout=2.0)
        except OSError:
            time.sleep(0.1)
            continue
        if status == 200:
            return True
        time.sleep(0.05)
    print(f"-- {label} never reached ready", file=sys.stderr)
    return False


def _kill(server):
    if server is not None and server.poll() is None:
        server.kill()
        server.wait(timeout=15.0)


def _terminate(server):
    if server is not None and server.poll() is None:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait(timeout=15.0)


def _replica_status(port):
    status, body = _request(
        port, "GET", "/v1/replica/status", timeout=5.0
    )
    if status != 200:
        raise RuntimeError(f"replica status refused: {status} {body}")
    return body


def phase_storm(primary_port, follower_ports, seed, mutations):
    """Mutate the primary while read-your-writes reads hit followers.

    Returns (acked rows, staleness stats dict).  Raises on transport
    or protocol failures; min_lsn violations are *counted*, the caller
    turns them into the unsound exit.
    """
    rng = random.Random(seed)
    acked = []
    stats = {
        "ryw_reads": 0,
        "ryw_served": 0,
        "stale_shed": 0,
        "other_refusals": 0,
        "min_lsn_violations": 0,
    }
    for i in range(1, mutations + 1):
        row = f"row{seed:04d}x{i:05d}"
        status, body = _request(
            primary_port, "POST", "/v1/db/emp/mutate",
            {"insert": [["Audit", row, "v"]]},
        )
        if status != 200 or "lsn" not in body:
            raise RuntimeError(
                f"primary refused mutation {i}: {status} {body}"
            )
        acked.append((body["lsn"], row))
        if i % 5 != 0:
            continue
        # Read-your-writes probe: the freshest ack is the bound.
        follower = rng.choice(follower_ports)
        min_lsn = acked[-1][0]
        stats["ryw_reads"] += 1
        status, body = _request(
            follower, "POST", "/v1/cqa",
            {"db": "emp", "query": READ_QUERY, "min_lsn": min_lsn},
            timeout=30.0,
        )
        if status == 200:
            as_of = body.get("as_of_lsn")
            if not isinstance(as_of, int) or as_of < min_lsn:
                stats["min_lsn_violations"] += 1
            else:
                stats["ryw_served"] += 1
        elif status == 503 and body.get("error") == "stale-read":
            stats["stale_shed"] += 1
        else:
            stats["other_refusals"] += 1
    print(
        f"-- storm: {len(acked)} acked; RYW reads "
        f"{stats['ryw_reads']} (served {stats['ryw_served']}, "
        f"stale-shed {stats['stale_shed']}, other "
        f"{stats['other_refusals']}, violations "
        f"{stats['min_lsn_violations']})"
    )
    return acked, stats


def phase_quiesce(follower_ports, target_lsn, deadline_s=60.0):
    """Wait until every follower has applied *target_lsn*."""
    start = time.monotonic()
    remaining = dict.fromkeys(follower_ports)
    while time.monotonic() - start < deadline_s:
        for port in follower_ports:
            doc = _replica_status(port)
            remaining[port] = doc.get("last_lsn")
        if all(
            isinstance(lsn, int) and lsn >= target_lsn
            for lsn in remaining.values()
        ):
            print(
                f"-- quiesced: followers at {remaining} "
                f"(target {target_lsn})"
            )
            return True
        time.sleep(0.05)
    print(
        f"-- quiesce timed out: followers at {remaining}, "
        f"target {target_lsn}",
        file=sys.stderr,
    )
    return False


def phase_promote(follower_ports, acked):
    """SIGKILL already happened: promote the most-caught-up follower.

    Returns (exit code or None, winner port, loser port, new epoch).
    """
    by_lsn = sorted(
        follower_ports,
        key=lambda port: _replica_status(port).get("last_lsn") or 0,
    )
    winner, loser = by_lsn[-1], by_lsn[0]
    status, body = _request(
        winner, "POST", "/v1/replica/promote", {}, timeout=30.0
    )
    if status != 200 or body.get("role") != "primary":
        return _fail(f"promotion refused: {status} {body}"), 0, 0, 0
    epoch = body.get("epoch")
    if not isinstance(epoch, int) or epoch < 1:
        return (
            _fail(f"promotion did not bump the epoch: {body}"),
            0, 0, 0,
        )
    print(
        f"-- promoted follower on port {winner}: epoch {epoch}, "
        f"last_lsn {body.get('last_lsn')}, "
        f"promotion {body.get('promotion_ms')}ms"
    )
    # Zero acked-then-lost: read *at* the max acked LSN on the new
    # primary and demand every acknowledged row in the answer.
    max_acked = max(lsn for lsn, _ in acked)
    status, body = _request(
        winner, "POST", "/v1/cqa",
        {"db": "emp", "query": READ_QUERY, "min_lsn": max_acked},
        timeout=30.0,
    )
    if status != 200:
        return (
            _fail(
                f"new primary cannot serve min_lsn={max_acked}: "
                f"{status} {body}",
                EXIT_UNSOUND,
            ),
            0, 0, 0,
        )
    surviving = {row[0] for row in body.get("answers", [])}
    missing = [row for _, row in acked if row not in surviving]
    if missing:
        return (
            _fail(
                f"{len(missing)} acknowledged mutation(s) lost in "
                f"failover (first: {missing[:5]})",
                EXIT_UNSOUND,
            ),
            0, 0, 0,
        )
    # And the new primary takes writes, stamped with its epoch.
    status, body = _request(
        winner, "POST", "/v1/db/emp/mutate",
        {"insert": [["Audit", "post-failover", "v"]]},
    )
    if status != 200 or "lsn" not in body:
        return (
            _fail(f"new primary refused a write: {status} {body}"),
            0, 0, 0,
        )
    print(
        f"-- zero loss: {len(acked)} acked row(s) present; new "
        f"primary writes at lsn {body['lsn']}"
    )
    return None, winner, loser, epoch


def phase_fence_ghost(port, data_dir, epoch):
    """Restart the dead primary and prove the epoch fences it out."""
    ghost = _spawn(port, data_dir)
    try:
        if not _wait_ready(port, label="restarted ex-primary"):
            return _fail("restarted ex-primary never became ready")
        doc = _replica_status(port)
        print(
            f"-- ghost: ex-primary back as {doc.get('role')} at "
            f"epoch {doc.get('epoch')} — fencing with epoch {epoch}"
        )
        status, body = _request(
            port, "POST", "/v1/replica/fence", {"epoch": epoch}
        )
        if status != 200:
            return _fail(f"fence refused: {status} {body}")
        status, body = _request(
            port, "POST", "/v1/db/emp/mutate",
            {"insert": [["Audit", "split-brain", "v"]]},
        )
        if status == 200:
            return _fail(
                "fenced ex-primary accepted a mutation — "
                "split-brain window open",
                EXIT_UNSOUND,
            )
        print(
            f"-- fenced: ex-primary refuses writes "
            f"({status} {body.get('error')})"
        )
    finally:
        _terminate(ghost)
    return 0


def phase_slo(port, slo_path):
    status, doc = _request(port, "GET", "/status", timeout=10.0)
    if status != 200:
        return _fail(f"/status refused on new primary: {status}")
    results = evaluate_slos(load_slo_config(slo_path), doc)
    promotion = [r for r in results if r["name"].startswith("replica-")]
    print(render_slo(promotion or results))
    if any(not r["ok"] for r in promotion):
        return _fail("promotion-time SLO violated", EXIT_SLO_VIOLATION)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for row names and follower read targeting",
    )
    parser.add_argument(
        "--mutations", type=int, default=60,
        help="storm size (each mutation is an fsynced append)",
    )
    parser.add_argument(
        "--slo", default=str(_ROOT / "benchmarks" / "slo.json"),
        help="SLO config with the replica-promotion objective",
    )
    args = parser.parse_args(argv)

    scratch = tempfile.mkdtemp(prefix="failover_drive_")
    primary_port = _free_port()
    follower_ports = [_free_port(), _free_port()]
    primary_dir = os.path.join(scratch, "primary")
    primary = None
    followers = []
    try:
        primary = _spawn(primary_port, primary_dir)
        if not _wait_ready(primary_port, label="primary"):
            return _fail("primary never became ready")
        status, body = _request(
            primary_port, "PUT", "/v1/db/emp", EMPLOYEE_SPEC
        )
        if status != 200:
            return _fail(f"registration refused: {status} {body}")
        for index, port in enumerate(follower_ports, start=1):
            followers.append(
                _spawn(
                    port,
                    os.path.join(scratch, f"follower{index}"),
                    extra=[
                        "--follower-of",
                        f"http://127.0.0.1:{primary_port}",
                        "--replica-id", f"f{index}",
                        "--replica-poll-interval", "0.05",
                    ],
                    telemetry=os.path.join(
                        scratch, f"telemetry{index}"
                    ),
                )
            )
        for port in follower_ports:
            if not _wait_ready(port, label=f"follower on {port}"):
                return _fail("a follower never caught up to ready")
        acked, stats = phase_storm(
            primary_port, follower_ports, args.seed, args.mutations
        )
        if stats["min_lsn_violations"]:
            return _fail(
                f"{stats['min_lsn_violations']} follower read(s) "
                f"served below their requested min_lsn",
                EXIT_UNSOUND,
            )
        if len(acked) < 10:
            return _fail(
                f"storm acked only {len(acked)} mutation(s) — "
                "nothing meaningful to fail over"
            )
        max_acked = max(lsn for lsn, _ in acked)
        if not phase_quiesce(follower_ports, max_acked):
            return _fail("followers never caught up to the storm")
        os.kill(primary.pid, signal.SIGKILL)
        primary.wait(timeout=15.0)
        print("-- primary SIGKILLed with no drain")
        code, winner, _loser, epoch = phase_promote(
            follower_ports, acked
        )
        if code is not None:
            return code
        # Evaluate the promotion SLO first: the live histogram is a
        # 60s rolling window, and the ghost restart below eats time.
        code = phase_slo(winner, args.slo)
        if code:
            return code
        return phase_fence_ghost(_free_port(), primary_dir, epoch)
    finally:
        _kill(primary)
        for server in followers:
            _terminate(server)
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
