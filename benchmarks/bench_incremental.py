"""B8 — repairs under updates: incremental vs from-scratch (Section 4.1).

[87] "just started to scratch the surface" of repairs under updates; the
incremental maintainer re-derives only conflicts anchored at changed
tuples, while the baseline rebuilds the conflict hypergraph after every
update.
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.constraints import ConflictHypergraph
from repro.relational import fact
from repro.repairs import IncrementalRepairer, s_repairs
from repro.workloads import random_rs_instance


def _updates(seed: int):
    import random

    rng = random.Random(seed)
    return (
        [fact("S", f"a{rng.randrange(6)}") for _ in range(3)],
        [fact("R", f"a{rng.randrange(6)}", f"a{rng.randrange(6)}")
         for _ in range(3)],
    )


@pytest.mark.parametrize("seed", [1, 5])
def test_incremental_maintenance(benchmark, seed):
    scenario = random_rs_instance(15, 6, 6, seed=seed)
    inserts_s, inserts_r = _updates(seed)

    def run_incremental():
        repairer = IncrementalRepairer(scenario.db, scenario.constraints)
        for f in inserts_s:
            repairer.insert([f])
        for f in inserts_r:
            repairer.insert([f])
        return repairer

    repairer = benchmark(run_incremental)
    expected = ConflictHypergraph.build(
        repairer.database, scenario.constraints
    )
    assert repairer.graph.edges == expected.edges


@pytest.mark.parametrize("seed", [1, 5])
def test_from_scratch_baseline(benchmark, seed):
    scenario = random_rs_instance(15, 6, 6, seed=seed)
    inserts_s, inserts_r = _updates(seed)

    def run_batch():
        db = scenario.db
        graph = None
        for f in inserts_s + inserts_r:
            db = db.insert([f])
            graph = ConflictHypergraph.build(db, scenario.constraints)
        return db, graph

    db, graph = benchmark(run_batch)
    assert graph is not None


def test_incremental_repairs_after_updates(benchmark):
    scenario = random_rs_instance(8, 4, 5, seed=2)
    repairer = IncrementalRepairer(scenario.db, scenario.constraints)
    repairer.insert([fact("S", "a0"), fact("S", "a1")])
    repairs = benchmark(repairer.s_repairs)
    expected = {
        r.instance.facts()
        for r in s_repairs(repairer.database, scenario.constraints)
    }
    assert {r.instance.facts() for r in repairs} == expected


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
