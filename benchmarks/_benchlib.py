"""Shared benchmark runner: timed, instrumented, machine-readable.

Every ``bench_*.py`` script runs through this module (via the
``benchmark`` fixture in ``conftest.py``).  Each measured call is:

1. run once under a fresh observability collector to capture the key
   counters (ground rules, repairs emitted, SQL rows, ...);
2. re-run with instrumentation disabled to take wall-time samples
   (best-of-N, N adaptive so fast benchmarks get more rounds);
3. recorded as a :class:`BenchRecord`.

At the end of a run, one ``BENCH_<suite>.json`` file per benchmark
module is written to the repo root — the machine-readable perf
trajectory — alongside the human-readable table printed to the
terminal.  Run a single suite directly with::

    PYTHONPATH=src python benchmarks/bench_scaling.py
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

# Bootstrap src/ onto sys.path so ``python benchmarks/bench_x.py`` works
# without PYTHONPATH=src (the bench scripts import this module first).
_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability import collect

SCHEMA_VERSION = 1

#: Counters worth exporting per benchmark (the full registry would drown
#: the JSON in incidental detail; these are the cost-shape counters the
#: paper claims are about).
EXPORTED_COUNTERS = (
    "asp.ground_atoms",
    "asp.ground_rules",
    "asp.candidates_checked",
    "asp.models_accepted",
    "conflicts.edges",
    "conflicts.hitting_set_branches",
    "repairs.s_emitted",
    "repairs.c_emitted",
    "repairs.counted",
    "repairs.states_explored",
    "repairs.bb_branches",
    "repairs.bb_pruned",
    "cqa.repairs_intersected",
    "cqa.residues",
    "cqa.rewrite_nodes",
    "cqa.sql_rows",
    "sql.statements",
    "sql.rows_materialized",
)


@dataclass
class BenchRecord:
    """One measured benchmark: identity, timing, counters."""

    name: str
    params: Dict[str, object] = field(default_factory=dict)
    rounds: int = 0
    best_s: float = 0.0
    mean_s: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "params": self.params,
            "rounds": self.rounds,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "counters": self.counters,
        }


class BenchRunner:
    """Accumulates records for one suite and writes ``BENCH_<suite>.json``."""

    def __init__(self, suite: str) -> None:
        self.suite = suite
        self.records: List[BenchRecord] = []

    def measure(
        self,
        name: str,
        fn: Callable,
        *args,
        params: Optional[Dict[str, object]] = None,
        min_rounds: int = 3,
        target_s: float = 0.25,
        **kwargs,
    ):
        """Measure *fn(*args, **kwargs)*; returns fn's result.

        The first (counter-capturing) round is not timed, so collector
        overhead never pollutes the wall-time samples.
        """
        with collect() as collector:
            result = fn(*args, **kwargs)
        counters = {
            k: v
            for k, v in collector.snapshot().items()
            if k in EXPORTED_COUNTERS
        }
        samples: List[float] = []
        spent = 0.0
        while len(samples) < min_rounds or spent < target_s:
            t0 = time.perf_counter()
            fn(*args, **kwargs)
            took = time.perf_counter() - t0
            samples.append(took)
            spent += took
            if len(samples) >= 200:
                break
        self.records.append(
            BenchRecord(
                name=name,
                params=dict(params or {}),
                rounds=len(samples),
                best_s=min(samples),
                mean_s=sum(samples) / len(samples),
                counters=counters,
            )
        )
        return result

    # -- output --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "suite": self.suite,
            "python": platform.python_version(),
            "results": [r.to_dict() for r in self.records],
        }

    def write(self, directory) -> pathlib.Path:
        """Write ``BENCH_<suite>.json`` into *directory*; returns the path."""
        path = pathlib.Path(directory) / f"BENCH_{self.suite}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def render(self) -> str:
        """The human-readable per-suite table."""
        lines = [f"benchmark suite {self.suite!r}:"]
        width = max((len(r.name) for r in self.records), default=4)
        for r in self.records:
            extras = " ".join(
                f"{k.split('.', 1)[1]}={v}"
                for k, v in sorted(r.counters.items())
            )
            lines.append(
                f"  {r.name.ljust(width)}  best {r.best_s * 1000:8.2f}ms"
                f"  mean {r.mean_s * 1000:8.2f}ms"
                f"  ({r.rounds} rounds)  {extras}"
            )
        return "\n".join(lines)


def suite_name_for(path) -> str:
    """``bench_scaling.py`` -> ``scaling`` (module stem sans prefix)."""
    stem = pathlib.Path(path).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def main(path) -> int:
    """Entry point for ``python benchmarks/bench_<x>.py``: run via pytest."""
    import pytest

    return pytest.main(
        [str(path), "-q", "-p", "no:benchmark", "-p", "no:cacheprovider"]
    )
