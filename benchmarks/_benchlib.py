"""Shared benchmark runner: timed, instrumented, machine-readable.

Every ``bench_*.py`` script runs through this module (via the
``benchmark`` fixture in ``conftest.py``).  Each measured call is:

1. run once under a fresh observability collector to capture the key
   counters (ground rules, repairs emitted, SQL rows, ...);
2. re-run with instrumentation disabled to take wall-time samples
   (best-of-N, N adaptive so fast benchmarks get more rounds);
3. recorded as a :class:`BenchRecord`.

At the end of a run, one ``BENCH_<suite>.json`` file per benchmark
module is written to ``benchmarks/results/`` (gitignored) — the
machine-readable perf trajectory — alongside the human-readable table
printed to the terminal.  ``benchmarks/baselines/`` holds the committed
reference copies that ``python -m repro obs check`` gates against.
Run a single suite directly with::

    PYTHONPATH=src python benchmarks/bench_scaling.py
"""

from __future__ import annotations

import json
import pathlib
import platform
import statistics
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

# Bootstrap src/ onto sys.path so ``python benchmarks/bench_x.py`` works
# without PYTHONPATH=src (the bench scripts import this module first).
_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability import collect

# Schema 2 adds ``median_s`` (the regression gate's robust timing
# statistic) and the optional ``mem_peak_kb`` (present only when the run
# profiled memory).  Readers fall back to ``best_s`` for schema-1 files.
SCHEMA_VERSION = 2

#: Counters worth exporting per benchmark (the full registry would drown
#: the JSON in incidental detail; these are the cost-shape counters the
#: paper claims are about).
EXPORTED_COUNTERS = (
    "asp.ground_atoms",
    "asp.ground_rules",
    "asp.candidates_checked",
    "asp.models_accepted",
    "conflicts.edges",
    "conflicts.hitting_set_branches",
    "repairs.s_emitted",
    "repairs.c_emitted",
    "repairs.counted",
    "repairs.states_explored",
    "repairs.bb_branches",
    "repairs.bb_pruned",
    "cqa.repairs_intersected",
    "cqa.residues",
    "cqa.rewrite_nodes",
    "cqa.sql_rows",
    "sql.statements",
    "sql.rows_materialized",
    # Serving-plane counters: inert in today's suites (no benchmark
    # dispatches yet), but tracked so a future dispatch benchmark's
    # baselines pick them up without a schema bump.
    "dispatch.requests",
    "dispatch.requests.ok",
    "dispatch.requests.degraded",
    "dispatch.requests.error",
    "dispatch.fallbacks",
    "dispatch.worker_runs",
    "dispatch.events.request.start",
    "dispatch.events.request.end",
    "dispatch.events.rung.failure",
    "dispatch.events.breaker.transition",
    # CQA-as-a-service counters (PR 8): the serve benchmark's
    # deterministic request counts gate on these.
    "serve.requests",
    "serve.requests.ok",
    "serve.requests.degraded",
    "serve.requests.shed",
    "serve.requests.error",
    "pool.dispatches",
    "pool.spawns",
    "pool.recycles",
    # Durable tenant state (PR 9): the store benchmark's deterministic
    # append/replay counts gate on these.
    "serve.mutations",
    "store.appends",
    "store.append_failures",
    "store.fsyncs",
    "store.compactions",
    "store.snapshots_written",
    "store.records_replayed",
    "store.recoveries",
    "store.torn_tail_truncated",
    # Replication & failover (PR 10): the replica benchmark's
    # deterministic ship/apply/bootstrap counts gate on these.
    "store.epoch_bumps",
    "store.duplicate_skipped",
    "replica.pulls_served",
    "replica.records_shipped",
    "replica.records_applied",
    "replica.bootstraps",
    "replica.bootstraps_served",
    "replica.state_transfers",
    "replica.fenced_rejects",
)


@dataclass
class BenchRecord:
    """One measured benchmark: identity, timing, counters."""

    name: str
    params: Dict[str, object] = field(default_factory=dict)
    rounds: int = 0
    best_s: float = 0.0
    mean_s: float = 0.0
    median_s: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    mem_peak_kb: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        record = {
            "name": self.name,
            "params": self.params,
            "rounds": self.rounds,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "median_s": self.median_s,
            "counters": self.counters,
        }
        if self.mem_peak_kb is not None:
            record["mem_peak_kb"] = self.mem_peak_kb
        return record


class BenchRunner:
    """Accumulates records for one suite and writes ``BENCH_<suite>.json``."""

    def __init__(self, suite: str) -> None:
        self.suite = suite
        self.records: List[BenchRecord] = []

    def measure(
        self,
        name: str,
        fn: Callable,
        *args,
        params: Optional[Dict[str, object]] = None,
        min_rounds: int = 3,
        target_s: float = 0.25,
        profile_mem: bool = False,
        **kwargs,
    ):
        """Measure *fn(*args, **kwargs)*; returns fn's result.

        The first (counter-capturing) round is not timed, so collector
        overhead never pollutes the wall-time samples.  With
        *profile_mem* a final tracemalloc-instrumented round (also
        untimed — tracemalloc slows allocation-heavy code severely)
        records the peak allocation as ``mem_peak_kb``.
        """
        with collect() as collector:
            result = fn(*args, **kwargs)
        counters = {
            k: v
            for k, v in collector.snapshot().items()
            if k in EXPORTED_COUNTERS
        }
        samples: List[float] = []
        spent = 0.0
        while len(samples) < min_rounds or spent < target_s:
            t0 = time.perf_counter()
            fn(*args, **kwargs)
            took = time.perf_counter() - t0
            samples.append(took)
            spent += took
            if len(samples) >= 200:
                break
        mem_peak_kb = None
        if profile_mem:
            already_tracing = tracemalloc.is_tracing()
            if not already_tracing:
                tracemalloc.start()
            tracemalloc.reset_peak()
            fn(*args, **kwargs)
            _, peak = tracemalloc.get_traced_memory()
            if not already_tracing:
                tracemalloc.stop()
            mem_peak_kb = round(peak / 1024)
        self.records.append(
            BenchRecord(
                name=name,
                params=dict(params or {}),
                rounds=len(samples),
                best_s=min(samples),
                mean_s=sum(samples) / len(samples),
                median_s=statistics.median(samples),
                counters=counters,
                mem_peak_kb=mem_peak_kb,
            )
        )
        return result

    # -- output --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "suite": self.suite,
            "python": platform.python_version(),
            "results": [r.to_dict() for r in self.records],
        }

    def write(self, directory) -> pathlib.Path:
        """Write ``BENCH_<suite>.json`` into *directory*; returns the path."""
        path = pathlib.Path(directory) / f"BENCH_{self.suite}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def render(self) -> str:
        """The human-readable per-suite table."""
        lines = [f"benchmark suite {self.suite!r}:"]
        width = max((len(r.name) for r in self.records), default=4)
        for r in self.records:
            extras = " ".join(
                f"{k.split('.', 1)[1]}={v}"
                for k, v in sorted(r.counters.items())
            )
            if r.mem_peak_kb is not None:
                extras = f"peak {r.mem_peak_kb}kB  " + extras
            lines.append(
                f"  {r.name.ljust(width)}  best {r.best_s * 1000:8.2f}ms"
                f"  med {r.median_s * 1000:8.2f}ms"
                f"  ({r.rounds} rounds)  {extras}"
            )
        return "\n".join(lines)


def suite_name_for(path) -> str:
    """``bench_scaling.py`` -> ``scaling`` (module stem sans prefix)."""
    stem = pathlib.Path(path).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def main(path) -> int:
    """Entry point for ``python benchmarks/bench_<x>.py``: run via pytest."""
    import pytest

    return pytest.main(
        [str(path), "-q", "-p", "no:benchmark", "-p", "no:cacheprovider"]
    )
