"""B2 — CQA methods: repair enumeration vs FO rewriting vs SQL.

Section 3.2: CQA is coNP-hard (or worse) in general, so enumerating the
repair class costs time exponential in the violation count, while the
Fuxman–Miller FO rewriting answers the same queries in polynomial time.
The series below shows "who wins, by roughly what factor, and where the
crossover falls": enumeration is competitive only while repairs are few.
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.cqa import (
    answers_via_sql,
    consistent_answers,
    consistent_answers_fm,
    fuxman_miller_rewrite,
    overapproximate_answers,
    underapproximate_answers,
)
from repro.logic import atom, cq, vars_
from repro.workloads import employee_key_violations

X, Y = vars_("x y")
NAMES = cq([X], [atom("Employee", X, Y)], name="names")
FULL = cq([X, Y], [atom("Employee", X, Y)], name="full")


def _scenario(k):
    return employee_key_violations(10, k, 2, seed=5)


@pytest.mark.parametrize("k", [2, 6, 10])
def test_enumeration(benchmark, k):
    scenario = _scenario(k)
    answers = benchmark(
        consistent_answers, scenario.db, scenario.constraints, NAMES
    )
    assert len(answers) == 10 + k  # every name is certain


@pytest.mark.parametrize("k", [2, 6, 10])
def test_fm_rewriting(benchmark, k):
    scenario = _scenario(k)
    expected = consistent_answers(scenario.db, scenario.constraints, NAMES)
    answers = benchmark(
        consistent_answers_fm, scenario.db, scenario.constraints, NAMES
    )
    assert answers == expected


@pytest.mark.parametrize("k", [2, 6, 10])
def test_sql_rewriting(benchmark, k):
    scenario = _scenario(k)
    rewritten = fuxman_miller_rewrite(
        FULL, scenario.constraints, scenario.db
    )
    expected = consistent_answers(scenario.db, scenario.constraints, FULL)
    answers = benchmark(answers_via_sql, scenario.db, rewritten)
    assert answers == expected


@pytest.mark.parametrize("k", [2, 6, 10])
def test_under_approximation(benchmark, k):
    scenario = _scenario(k)
    exact = consistent_answers(scenario.db, scenario.constraints, FULL)
    under = benchmark(
        underapproximate_answers, scenario.db, scenario.constraints, FULL
    )
    assert under <= exact


@pytest.mark.parametrize("k", [2, 6, 10])
def test_over_approximation(benchmark, k):
    scenario = _scenario(k)
    exact = consistent_answers(scenario.db, scenario.constraints, FULL)
    over = benchmark(
        overapproximate_answers,
        scenario.db, scenario.constraints, FULL, 4,
    )
    assert exact <= over


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
