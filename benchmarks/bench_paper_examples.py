"""Benchmarks regenerating every worked example of the paper.

Each benchmark runs one experiment from the harness registry, asserts
that the result still matches the paper, and reports its cost.  These are
the executable counterparts of the EXPERIMENTS.md example rows.
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.harness import run


def _bench_experiment(benchmark, exp_id: str):
    result = benchmark(run, exp_id)
    assert result.match, result.render()
    return result


def test_ex21_residue_rewriting(benchmark):
    _bench_experiment(benchmark, "EX2.1")


def test_ex31_srepairs(benchmark):
    _bench_experiment(benchmark, "EX3.1")


def test_ex32_certain_answers(benchmark):
    _bench_experiment(benchmark, "EX3.2")


def test_ex33_key_repairs(benchmark):
    _bench_experiment(benchmark, "EX3.3")


def test_ex34_sql_rewriting(benchmark):
    _bench_experiment(benchmark, "EX3.4")


def test_ex35_repair_program(benchmark):
    _bench_experiment(benchmark, "EX3.5")


def test_ex41_crepairs(benchmark):
    _bench_experiment(benchmark, "EX4.1")


def test_ex42_weak_constraints(benchmark):
    _bench_experiment(benchmark, "EX4.2")


def test_ex43_null_tuple_repairs(benchmark):
    _bench_experiment(benchmark, "EX4.3")


def test_ex44_attribute_repairs(benchmark):
    _bench_experiment(benchmark, "EX4.4")


def test_ex51_gav_mediator(benchmark):
    _bench_experiment(benchmark, "EX5.1")


def test_ex52_global_cqa(benchmark):
    _bench_experiment(benchmark, "EX5.2")


def test_ex6_cfd(benchmark):
    _bench_experiment(benchmark, "EX6")


def test_ex71_causes(benchmark):
    _bench_experiment(benchmark, "EX7.1")


def test_ex72_asp_causes(benchmark):
    _bench_experiment(benchmark, "EX7.2")


def test_ex73_attribute_causes(benchmark):
    _bench_experiment(benchmark, "EX7.3")


def test_ex74_causality_under_ics(benchmark):
    _bench_experiment(benchmark, "EX7.4")


def test_fig1_conflict_hypergraph(benchmark):
    _bench_experiment(benchmark, "FIG1")


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
