"""B12 — CQA-as-a-service: isolation overhead and serving latency.

The warm worker pool exists to amortize process isolation: one-shot
``run_isolated`` pays interpreter start-up plus package import on every
request, the pool pays it once at spawn.  The headline measurement here
is that ratio — ``test_warm_pool_speedup`` *asserts* the warm path is
at least 5× cheaper per request, so a regression that silently
re-introduces a per-request spawn fails the suite, not just drifts a
number.  The HTTP benchmark measures the full serving stack (socket,
admission, executor, pool, dispatch ladder) with deterministic request
counters for the perf gate.
"""

import asyncio
import threading
import time

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.dispatch import (
    CQARequest,
    DispatchPolicy,
    PoolConfig,
    WorkerPool,
    run_isolated,
)
from repro.serve import (
    AdmissionController,
    CQAHTTPServer,
    CQAService,
    ServerConfig,
    TenantPolicy,
    run_closed_loop,
)
from repro.workloads import employee


def _request():
    scenario = employee()
    return CQARequest(
        scenario.db, scenario.constraints, scenario.queries["Q2"]
    )


@pytest.fixture(scope="module")
def warm_pool():
    pool = WorkerPool(PoolConfig(size=1)).start()
    yield pool
    pool.drain()


def test_spawn_per_request(benchmark):
    request = _request()
    answer = benchmark(
        run_isolated, "fm-sql", request, watchdog_s=30.0
    )
    assert answer.complete


def test_warm_pool_per_request(benchmark, warm_pool):
    request = _request()
    answer = benchmark(
        warm_pool.run_engine, "fm-sql", request, watchdog_s=30.0
    )
    assert answer.complete


def test_warm_pool_speedup(warm_pool):
    """The pool's reason to exist: ≥5× per-request isolation overhead
    reduction vs spawn-per-request (best-of-3 each)."""
    request = _request()

    def best_of(fn, rounds=3):
        samples = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - t0)
        return min(samples)

    spawn_s = best_of(
        lambda: run_isolated("fm-sql", request, watchdog_s=30.0)
    )
    warm_s = best_of(
        lambda: warm_pool.run_engine("fm-sql", request, watchdog_s=30.0)
    )
    speedup = spawn_s / warm_s
    print(
        f"\nisolation overhead: spawn {spawn_s * 1000:.1f}ms  "
        f"warm {warm_s * 1000:.1f}ms  speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"warm pool only {speedup:.1f}x faster than spawn-per-request "
        f"({spawn_s * 1000:.1f}ms vs {warm_s * 1000:.1f}ms)"
    )


class _Harness:
    """A CQAHTTPServer on a private event-loop thread (bench-local)."""

    def __init__(self, service, config):
        self.server = CQAHTTPServer(service, config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )

    def __enter__(self):
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=30.0)
        self._serving = asyncio.run_coroutine_threadsafe(
            self.server.serve_forever(), self.loop
        )
        return self.server

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(timeout=60.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.loop.close()


EMPLOYEE_SPEC = {
    "relations": {
        "Employee": {
            "columns": ["Name", "Salary"],
            "key": ["Name"],
            "rows": [
                ["page", "5K"],
                ["page", "8K"],
                ["smith", "3K"],
                ["stowe", "7K"],
            ],
        }
    },
    "constraints": {"fd": ["Employee: Name -> Salary"]},
}

CERTAIN_NAMES = [["page"], ["smith"], ["stowe"]]


def test_http_closed_loop(benchmark):
    """Full stack, sequential (concurrency 1 → no degrades, no sheds:
    the request counters stay deterministic for the perf gate)."""
    pool = WorkerPool(PoolConfig(size=1)).start()
    service = CQAService(
        policy=DispatchPolicy(isolate=("fm-sql",)),
        pool=pool,
        admission=AdmissionController(TenantPolicy()),
    )
    service.register_db("emp", EMPLOYEE_SPEC)
    harness = _Harness(service, ServerConfig(port=0, max_inflight=4))
    with harness as server:
        payload = {
            "db": "emp",
            "query": "Q(X) :- Employee(X, Y)",
            "timeout_s": 20.0,
        }
        report = benchmark(
            run_closed_loop,
            "127.0.0.1",
            server.port,
            payload,
            total=20,
            concurrency=1,
            expect=CERTAIN_NAMES,
        )
        assert report.sound
        assert report.ok == 20 and report.shed == 0


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
