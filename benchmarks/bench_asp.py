"""B4 — repair programs: stable models ≙ S-repairs, at what cost.

Section 3.3: "repair programs have exactly the required expressive power
for the task" — deciding stable models of disjunctive programs is as hard
as CQA itself.  These benchmarks ground and solve repair programs and
compare against direct enumeration on the same instances, asserting
exact agreement every time.
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.asp import RepairProgram, Solver, ground_program
from repro.repairs import c_repairs, s_repairs
from repro.workloads import employee_key_violations, random_rs_instance, rs_instance


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_repair_program_solving(benchmark, seed):
    scenario = random_rs_instance(6, 5, 5, seed=seed)

    def solve_fresh():
        rp = RepairProgram(scenario.db, scenario.constraints)
        return rp.repairs()

    repairs = benchmark(solve_fresh)
    direct = {
        r.instance.facts()
        for r in s_repairs(scenario.db, scenario.constraints)
    }
    assert {r.instance.facts() for r in repairs} == direct


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_direct_enumeration_baseline(benchmark, seed):
    scenario = random_rs_instance(6, 5, 5, seed=seed)
    repairs = benchmark(s_repairs, scenario.db, scenario.constraints)
    assert repairs


def test_grounding_cost(benchmark):
    scenario = employee_key_violations(8, 3, 2, seed=1)
    rp = RepairProgram(scenario.db, scenario.constraints)
    ground = benchmark(ground_program, rp.program)
    assert ground.n_atoms > 0


def test_weak_constraint_optimization(benchmark):
    scenario = rs_instance()

    def optimal_models():
        rp = RepairProgram(
            scenario.db, scenario.constraints,
            include_weak_constraints=True,
        )
        return rp.c_repairs()

    repairs = benchmark(optimal_models)
    direct = {
        r.instance.facts()
        for r in c_repairs(scenario.db, scenario.constraints)
    }
    assert {r.instance.facts() for r in repairs} == direct


def test_cqa_via_cautious_reasoning(benchmark):
    from repro.workloads import employee

    scenario = employee()
    rp = RepairProgram(scenario.db, scenario.constraints)
    q = scenario.queries["Q2"]
    answers = benchmark(rp.consistent_answers, q)
    assert answers == {("smith",), ("stowe",), ("page",)}


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
