"""B5 — causality: the repair connection vs the direct definition vs ASP.

Section 7: computing causes for CQs is PTIME, but responsibilities
connect to C-repairs and are provably harder.  The repair-connection
implementation amortizes one S-repair enumeration across all causes;
the direct search pays per-cause exponential contingency search; the
ASP path grounds and solves the extended repair program.
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.causality import (
    actual_causes,
    actual_causes_direct,
    actual_causes_under_ics,
    attribute_causes,
    causes_via_asp,
)
from repro.logic import atom, cq, vars_
from repro.workloads import dep_course, random_rs_instance

X, Y = vars_("x y")
QUERY = cq([], [atom("S", X), atom("R", X, Y), atom("S", Y)], name="Q")


@pytest.mark.parametrize("seed", [0, 2])
def test_causes_via_repairs(benchmark, seed):
    scenario = random_rs_instance(6, 4, 4, seed=seed)
    causes = benchmark(actual_causes, scenario.db, QUERY)
    assert isinstance(causes, list)


@pytest.mark.parametrize("seed", [0, 2])
def test_causes_direct(benchmark, seed):
    scenario = random_rs_instance(6, 4, 4, seed=seed)
    expected = {
        c.fact: c.responsibility
        for c in actual_causes(scenario.db, QUERY)
    }
    causes = benchmark(actual_causes_direct, scenario.db, QUERY)
    assert {c.fact: c.responsibility for c in causes} == expected


@pytest.mark.parametrize("seed", [0, 2])
def test_causes_via_asp(benchmark, seed):
    scenario = random_rs_instance(4, 3, 3, seed=seed)
    expected = {
        scenario.db.tid_of(c.fact): c.responsibility
        for c in actual_causes(scenario.db, QUERY)
    }
    rho = benchmark(causes_via_asp, scenario.db, QUERY)
    assert rho == expected


def test_attribute_causes(benchmark):
    scenario = random_rs_instance(5, 4, 4, seed=1)
    causes = benchmark(attribute_causes, scenario.db, QUERY)
    assert isinstance(causes, list)


def test_causes_under_ics(benchmark):
    scenario = dep_course()
    causes = benchmark(
        actual_causes_under_ics,
        scenario.db,
        scenario.constraints,
        scenario.queries["Q2"],
        ("John",),
    )
    assert len(causes) == 2


def test_datalog_causes(benchmark):
    from repro.causality import datalog_causes
    from repro.datalog import Program, rule
    from repro.relational import Database

    # A diamond-chain graph: multiple derivations per path goal.
    edges = []
    for layer in range(4):
        edges.append((f"n{layer}", f"a{layer}"))
        edges.append((f"n{layer}", f"b{layer}"))
        edges.append((f"a{layer}", f"n{layer + 1}"))
        edges.append((f"b{layer}", f"n{layer + 1}"))
    db = Database.from_dict({"edge": edges})
    (z,) = vars_("z")
    tc = Program((
        rule(atom("path", X, Y), [atom("edge", X, Y)]),
        rule(
            atom("path", X, Y),
            [atom("edge", X, z), atom("path", z, Y)],
        ),
    ))
    causes = benchmark(datalog_causes, db, tc, atom("path", "n0", "n4"))
    rhos = {c.responsibility for c in causes}
    # Per layer the two parallel edges halve responsibility.
    assert causes and max(rhos) <= 0.5


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
