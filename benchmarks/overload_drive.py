"""CI overload driver: 2× capacity must bend the server, never break it.

Phase A (overload): measure the server's sequential capacity, then fire
an *open-loop* load at twice that rate for ``--duration`` seconds — the
arrival schedule does not relent when the server slows, so the server
must shed or degrade.  The gate:

* **zero wrong answers** — every 200 is the exact certain-answer set
  (``complete: true``) or an explicitly-marked sound subset;
* **well-formed sheds** — every 429/503 carries ``error: "shed"``, a
  reason, ``retry_after_s``, and a ``Retry-After`` header;
* **visible backpressure** — at 2× capacity at least one request must
  have been shed or degraded (a server that "handled everything" at 2×
  its measured capacity measured wrong);
* **zero worker leaks** — the pool is back at full strength after the
  storm, and no worker process survives the graceful stop.

Phase B (record): a fresh server runs 100 deterministic sequential
requests under the flight recorder (``mode="all"``) and writes the
envelopes plus the live-plane status document.  CI then replays every
envelope (``repro obs replay``) and checks the serving SLOs against the
status — exercising the observability plane over the serving stack.

Exit codes: 0 clean, 9 (EXIT_UNSOUND) on any wrong/malformed response,
1 on any other gate failure.

Run locally::

    PYTHONPATH=src python benchmarks/overload_drive.py --duration 10
"""

import argparse
import asyncio
import os
import pathlib
import sys
import threading

_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.dispatch import DispatchPolicy, PoolConfig, WorkerPool
from repro.observability.flight import (
    FlightRecorder,
    install_recorder,
    uninstall_recorder,
)
from repro.observability.live import (
    LivePlane,
    install_live,
    uninstall_live,
    write_status_json,
)
from repro.serve import (
    AdmissionController,
    CQAHTTPServer,
    CQAService,
    ServerConfig,
    TenantPolicy,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.loadgen import EXIT_UNSOUND

EMPLOYEE_SPEC = {
    "relations": {
        "Employee": {
            "columns": ["Name", "Salary"],
            "key": ["Name"],
            "rows": [
                ["page", "5K"],
                ["page", "8K"],
                ["smith", "3K"],
                ["stowe", "7K"],
            ],
        }
    },
    "constraints": {"fd": ["Employee: Name -> Salary"]},
}

CERTAIN_NAMES = [["page"], ["smith"], ["stowe"]]


class Harness:
    """A CQAHTTPServer on a private event-loop thread."""

    def __init__(self, service, config):
        self.server = CQAHTTPServer(service, config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )

    def __enter__(self):
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=30.0)
        self._serving = asyncio.run_coroutine_threadsafe(
            self.server.serve_forever(), self.loop
        )
        return self.server

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(timeout=60.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.loop.close()


def _worker_children() -> list:
    """Pids of live repro.dispatch.worker children of this process."""
    me = os.getpid()
    found = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as fh:
                rest = fh.read().split(") ", 1)[1].split()
            if int(rest[1]) != me or rest[0] == "Z":
                continue
            with open(f"/proc/{entry}/cmdline", "rb") as fh:
                cmdline = fh.read().replace(b"\0", b" ")
        except OSError:
            continue
        if b"repro.dispatch.worker" in cmdline:
            found.append(int(entry))
    return found


def _fail(message: str, code: int = 1) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return code


def phase_overload(duration_s: float) -> int:
    pool = WorkerPool(PoolConfig(size=2)).start()
    service = CQAService(
        policy=DispatchPolicy(isolate=("fm-sql",)),
        pool=pool,
        admission=AdmissionController(
            TenantPolicy(
                max_concurrent=4,
                max_queue=4,
                default_timeout_s=2.0,
                max_timeout_s=5.0,
            )
        ),
    )
    service.register_db("emp", EMPLOYEE_SPEC)
    payload = {
        "db": "emp",
        "query": "Q(X) :- Employee(X, Y)",
        "timeout_s": 2.0,
    }
    with Harness(
        service, ServerConfig(port=0, max_inflight=6)
    ) as server:
        calibration = run_closed_loop(
            "127.0.0.1",
            server.port,
            payload,
            total=30,
            concurrency=1,
            expect=CERTAIN_NAMES,
        )
        if not calibration.sound:
            return _fail(
                "calibration run unsound:\n" + calibration.render(),
                EXIT_UNSOUND,
            )
        capacity_rps = calibration.to_dict()["throughput_rps"]
        rate = max(2.0, 2.0 * capacity_rps)
        print(
            f"-- capacity ~{capacity_rps:.1f} rps sequential; "
            f"driving open-loop at {rate:.1f} rps for {duration_s:.0f}s"
        )
        report = run_open_loop(
            "127.0.0.1",
            server.port,
            payload,
            rate_per_s=rate,
            duration_s=duration_s,
            expect=CERTAIN_NAMES,
        )
        print(report.render())
        if not report.sound:
            return _fail(
                f"{report.wrong} wrong answer(s), "
                f"{report.malformed} malformed shed(s) under overload",
                EXIT_UNSOUND,
            )
        if report.shed + report.degraded == 0:
            return _fail(
                "no shed or degraded response at 2x capacity — "
                "backpressure never engaged"
            )
        if report.ok == 0:
            return _fail("no exact answer served under overload")
        if report.transport_errors:
            return _fail(
                f"{report.transport_errors} transport error(s): "
                "connections must survive overload"
            )
        if not pool.wait_ready(timeout_s=30.0):
            return _fail(
                f"pool did not return to full strength: {pool.stats()}"
            )
        stats = pool.stats()
        print(
            f"-- pool after storm: {stats['workers']} worker(s), "
            f"{stats['spawns']} spawn(s), {stats['recycles']} recycle(s)"
        )
    leftover = _worker_children()
    if leftover:
        return _fail(f"worker process(es) leaked: {leftover}")
    print("-- overload phase clean: sound, shedding, leak-free")
    return 0


def phase_record(flight_dir: str, status_out: str, total: int) -> int:
    plane = install_live(LivePlane())
    recorder = install_recorder(FlightRecorder(flight_dir, mode="all"))
    try:
        pool = WorkerPool(PoolConfig(size=1)).start()
        service = CQAService(
            policy=DispatchPolicy(isolate=("fm-sql",)),
            pool=pool,
            admission=AdmissionController(TenantPolicy()),
        )
        service.register_db("emp", EMPLOYEE_SPEC)
        with Harness(
            service, ServerConfig(port=0, max_inflight=4)
        ) as server:
            report = run_closed_loop(
                "127.0.0.1",
                server.port,
                {
                    "db": "emp",
                    "query": "Q(X) :- Employee(X, Y)",
                    "timeout_s": 20.0,
                },
                total=total,
                concurrency=1,
                expect=CERTAIN_NAMES,
            )
        print(report.render())
        if not report.sound:
            return _fail("recorded run unsound", EXIT_UNSOUND)
        if report.ok != total:
            return _fail(
                f"recorded run expected {total} exact answers, "
                f"got {report.ok}"
            )
    finally:
        uninstall_recorder()
        uninstall_live()
    if len(recorder.written) != total:
        return _fail(
            f"flight recorder captured {len(recorder.written)} of "
            f"{total} requests"
        )
    write_status_json(status_out, plane.status())
    print(
        f"-- recorded {len(recorder.written)} envelope(s) to "
        f"{flight_dir}/, status to {status_out}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="open-loop overload duration in seconds (default 30)",
    )
    parser.add_argument(
        "--record-total", type=int, default=100,
        help="requests in the recorded replay run (default 100)",
    )
    parser.add_argument(
        "--flight-dir", default="flight_serve",
        help="directory for phase-B flight envelopes",
    )
    parser.add_argument(
        "--status-out", default="serve_status.json",
        help="phase-B live-plane status document path",
    )
    parser.add_argument(
        "--skip-overload", action="store_true",
        help="run only the record phase",
    )
    parser.add_argument(
        "--skip-record", action="store_true",
        help="run only the overload phase",
    )
    args = parser.parse_args(argv)
    if not args.skip_overload:
        rc = phase_overload(args.duration)
        if rc:
            return rc
    if not args.skip_record:
        rc = phase_record(
            args.flight_dir, args.status_out, args.record_total
        )
        if rc:
            return rc
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
