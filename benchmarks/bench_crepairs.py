"""B3 — C-repairs: branch-and-bound vs filtering all S-repairs.

Section 4.1: "the complexity of computational problems related to
C-repairs tends to be higher than for S-repairs".  Computing the full
C-repair set by filtering every S-repair pays the S-enumeration cost;
the dedicated minimum-hitting-set branch-and-bound prunes on the best
cardinality found (the DESIGN.md ablation pair).
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.constraints import ConflictHypergraph
from repro.repairs import (
    c_repairs,
    minimum_hitting_sets_branch_and_bound,
    one_c_repair,
    repair_distance,
    s_repairs,
)
from repro.workloads import employee_key_violations, random_rs_instance


@pytest.mark.parametrize("seed", [11, 13])
def test_filter_engine(benchmark, seed):
    scenario = random_rs_instance(12, 6, 6, seed=seed)
    repairs = benchmark(
        c_repairs, scenario.db, scenario.constraints, None, "filter"
    )
    assert repairs


@pytest.mark.parametrize("seed", [11, 13])
def test_branch_and_bound_engine(benchmark, seed):
    scenario = random_rs_instance(12, 6, 6, seed=seed)
    expected = {
        r.diff
        for r in c_repairs(
            scenario.db, scenario.constraints, engine="filter"
        )
    }
    repairs = benchmark(c_repairs, scenario.db, scenario.constraints)
    assert {r.diff for r in repairs} == expected


@pytest.mark.parametrize("k", [4, 8])
def test_one_c_repair(benchmark, k):
    scenario = employee_key_violations(6, k, 2, seed=3)
    repair = benchmark(one_c_repair, scenario.db, scenario.constraints)
    assert repair.size == repair_distance(
        scenario.db, scenario.constraints
    )


@pytest.mark.parametrize("k", [4, 8])
def test_minimum_hitting_sets(benchmark, k):
    scenario = employee_key_violations(6, k, 2, seed=3)
    graph = ConflictHypergraph.build(scenario.db, scenario.constraints)
    sets = benchmark(minimum_hitting_sets_branch_and_bound, graph)
    assert all(len(s) == k for s in sets)


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
