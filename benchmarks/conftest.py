"""Benchmark plumbing for the ``bench_*.py`` suites.

Overrides the ``benchmark`` fixture (pytest-benchmark's, when that
plugin happens to be installed) with the zero-dependency
:mod:`_benchlib` runner, so every benchmark run also captures the
observability counters and ends by writing one machine-readable
``BENCH_<suite>.json`` per module into ``benchmarks/results/``
(gitignored; copy into ``benchmarks/baselines/`` to commit a new
reference for ``python -m repro obs check``).  Pass ``--profile-mem``
to add a tracemalloc round per benchmark (``mem_peak_kb`` in the JSON).
"""

import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"

# Make ``import _benchlib`` and ``import repro`` work however pytest was
# invoked (PYTHONPATH=src is not required for benchmark runs).
for _entry in (str(BENCH_DIR), str(REPO_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

import pytest

import _benchlib


def pytest_addoption(parser):
    parser.addoption(
        "--profile-mem", action="store_true", default=False,
        help="record tracemalloc peak per benchmark (mem_peak_kb)",
    )


def pytest_configure(config):
    config._repro_bench_runners = {}


@pytest.fixture
def benchmark(request):
    """Time a callable and record counters: ``benchmark(fn, *args)``.

    Same call signature as pytest-benchmark's fixture, so the bench
    scripts stay plugin-agnostic.
    """
    suite = _benchlib.suite_name_for(str(request.node.fspath))
    runners = request.config._repro_bench_runners
    runner = runners.setdefault(suite, _benchlib.BenchRunner(suite))
    callspec = getattr(request.node, "callspec", None)
    params = {}
    if callspec is not None:
        params = {
            key: value
            for key, value in callspec.params.items()
            if isinstance(value, (int, float, str, bool))
        }

    profile_mem = request.config.getoption("--profile-mem")

    def run(fn, *args, **kwargs):
        return runner.measure(
            request.node.name, fn, *args,
            params=params, target_s=0.15, profile_mem=profile_mem,
            **kwargs,
        )

    return run


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    runners = getattr(config, "_repro_bench_runners", {})
    for suite in sorted(runners):
        runner = runners[suite]
        if not runner.records:
            continue
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = runner.write(RESULTS_DIR)
        terminalreporter.write_line("")
        terminalreporter.write_line(runner.render())
        terminalreporter.write_line(f"  -> wrote {path}")
