"""CI crash-recovery driver: kill -9 mid-storm, lose nothing acked.

The drive is one cycle of the durability contract, end to end, against
the real server process:

1. **Storm** — start ``repro serve --data-dir`` (optionally under a
   seeded storage-fault plan), register a tenant database, and fire a
   mutation storm over HTTP, recording every *acknowledged* row (a 200
   carrying an ``lsn``).  Refusals (503 ``store-unavailable`` after an
   injected fault trips the crash-only latch) are recorded too — they
   must NOT reappear after recovery as if they had been acked.
2. **Kill** — SIGKILL the server at a seeded random point mid-storm.
   No drain, no atexit, no flush: whatever the WAL holds is the state.
3. **Verify offline** — ``verify_store`` must accept the directory
   (torn tails are repairable; acked-record corruption is not).
4. **Recover** — restart the server clean and wait for ``/healthz`` to
   flip from 503 ``recovering`` to 200 ``ready``; then check via
   ``/v1/cqa`` that every acknowledged row survived, and evaluate the
   recovery-time SLO (``store-recovery-p99``) against ``/status``.

Exit codes: 0 clean; 9 (EXIT_UNSOUND) on any acknowledged-then-lost
mutation; 10 (EXIT_STORE_CORRUPT) when offline verification refuses the
directory; 7 (EXIT_SLO_VIOLATION) on a recovery-time SLO breach; 1 on
any other gate failure.

Run locally::

    PYTHONPATH=src python benchmarks/crash_drive.py --fault-plan short-write --seed 7
"""

import argparse
import http.client
import json
import os
import pathlib
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_SRC = str(_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cli import EXIT_STORE_CORRUPT
from repro.observability.live.slo import (
    EXIT_SLO_VIOLATION,
    evaluate_slos,
    load_slo_config,
    render_slo,
)
from repro.serve.loadgen import EXIT_UNSOUND
from repro.serve.store import verify_store

EMPLOYEE_SPEC = {
    "relations": {
        "Employee": {
            "columns": ["Name", "Salary"],
            "key": ["Name"],
            "rows": [
                ["page", "5K"],
                ["page", "8K"],
                ["smith", "3K"],
                ["stowe", "7K"],
            ],
        },
        "Audit": {"columns": ["K", "V"], "rows": []},
    },
    "constraints": {"fd": ["Employee: Name -> Salary"]},
}

#: Seeded storage-fault plans for the CI matrix.  Bit flips are absent
#: by design: they corrupt *acknowledged* records, which recovery must
#: refuse (exit 10) rather than survive — that refusal path is covered
#: by tests/test_store.py, not by this zero-loss gate.
FAULT_PLANS = {
    "clean": [],
    "short-write": [
        "--fault-storage-short-rate", "0.03",
        "--fault-storage-max", "2",
    ],
    # Lower rate than short-write: with ``--fsync always`` every append
    # fsyncs, and the first fault latches the store crash-only, so a
    # higher rate would end the storm before it accumulates acks.
    "fsync-fail": [
        "--fault-storage-fsync-rate", "0.01",
        "--fault-storage-max", "2",
    ],
}


def _fail(message: str, code: int = 1) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return code


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn(port: int, data_dir: str, extra=(), telemetry=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC] + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", str(port),
        "--workers", "0",
        "--data-dir", data_dir,
        "--fsync", "always",
    ]
    if telemetry:
        command += ["--telemetry", telemetry]
    command += list(extra)
    return subprocess.Popen(command, env=env)


def _request(port, method, path, payload=None, timeout=10.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        raw = response.read()
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            parsed = {}
        return response.status, parsed
    finally:
        conn.close()


def _wait_phase(port, deadline_s=60.0):
    """Poll /healthz until 200; returns (ok, saw_recovering)."""
    saw_recovering = False
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        try:
            status, body = _request(port, "GET", "/healthz", timeout=2.0)
        except OSError:
            time.sleep(0.1)
            continue
        if status == 200:
            return True, saw_recovering
        if status == 503 and body.get("phase") == "recovering":
            saw_recovering = True
        time.sleep(0.05)
    return False, saw_recovering


def phase_storm(port, data_dir, plan, seed):
    """Returns (acked rows list, refused count) after the kill."""
    rng = random.Random(seed)
    extra = list(FAULT_PLANS[plan])
    if extra:
        extra = ["--fault-seed", str(seed)] + extra
    server = _spawn(port, data_dir, extra=extra)
    acked, refused = [], 0
    try:
        ok, _ = _wait_phase(port)
        if not ok:
            raise RuntimeError("server never became ready for the storm")
        status, body = _request(
            port, "PUT", "/v1/db/emp", EMPLOYEE_SPEC
        )
        if status != 200:
            raise RuntimeError(f"registration refused: {status} {body}")
        kill_after = rng.randint(40, 160)
        for i in range(1, kill_after + 1):
            row = f"row{seed:04d}x{i:05d}"
            try:
                status, body = _request(
                    port, "POST", "/v1/db/emp/mutate",
                    {"insert": [["Audit", row, "v"]]},
                )
            except OSError:
                break
            if status == 200 and "lsn" in body:
                acked.append((body["lsn"], row))
            elif status == 503:
                refused += 1
            else:
                raise RuntimeError(
                    f"unexpected mutation response {status}: {body}"
                )
        os.kill(server.pid, signal.SIGKILL)
        server.wait(timeout=15.0)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=15.0)
    print(
        f"-- storm: {len(acked)} acked, {refused} refused "
        f"(plan {plan}, seed {seed}), then SIGKILL"
    )
    return acked, refused


def phase_recover(port, data_dir, telemetry, acked, slo_path):
    server = _spawn(port, data_dir, telemetry=telemetry)
    try:
        ok, saw_recovering = _wait_phase(port)
        if not ok:
            return _fail("restarted server never reached ready")
        status, body = _request(
            port, "POST", "/v1/cqa",
            {"db": "emp", "query": "Q(K) :- Audit(K, V)"},
            timeout=30.0,
        )
        if status != 200:
            return _fail(f"post-recovery query failed: {status} {body}")
        recovered = {row[0] for row in body.get("answers", [])}
        missing = [row for _, row in acked if row not in recovered]
        if missing:
            return _fail(
                f"{len(missing)} acknowledged mutation(s) lost after "
                f"recovery (first: {missing[:5]})",
                EXIT_UNSOUND,
            )
        status, doc = _request(port, "GET", "/status", timeout=10.0)
        if status != 200 or doc.get("phase") != "ready":
            return _fail(f"/status not ready: {status} {doc}")
        store = doc.get("store") or {}
        print(
            f"-- recovered: {len(recovered)} row(s), last_lsn "
            f"{store.get('last_lsn')}, replayed "
            f"{(store.get('recovery') or {}).get('records_replayed')}, "
            f"healthz saw recovering={saw_recovering}"
        )
        results = evaluate_slos(load_slo_config(slo_path), doc)
        recovery = [r for r in results if r["name"].startswith("store-")]
        print(render_slo(recovery or results))
        if any(not r["ok"] for r in recovery):
            return _fail(
                "recovery-time SLO violated", EXIT_SLO_VIOLATION
            )
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait(timeout=15.0)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the kill point and the storage-fault plan",
    )
    parser.add_argument(
        "--fault-plan", choices=sorted(FAULT_PLANS), default="clean",
        help="seeded storage-fault plan for the storm phase",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="durable directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--slo", default=str(_ROOT / "benchmarks" / "slo.json"),
        help="SLO config with the store-recovery objective",
    )
    args = parser.parse_args(argv)

    scratch = None
    data_dir = args.data_dir
    if data_dir is None:
        scratch = tempfile.mkdtemp(prefix="crash_drive_")
        data_dir = os.path.join(scratch, "data")
    telemetry = os.path.join(
        scratch or os.path.dirname(data_dir) or ".", "telemetry"
    )
    try:
        storm_port = _free_port()
        acked, refused = phase_storm(
            storm_port, data_dir, args.fault_plan, args.seed
        )
        if len(acked) < 10:
            return _fail(
                f"storm acked only {len(acked)} mutation(s) — "
                "nothing meaningful to recover"
            )
        report = verify_store(data_dir)
        if not report["ok"]:
            return _fail(
                f"offline verification refused the store: "
                f"{report['problems']}",
                EXIT_STORE_CORRUPT,
            )
        for note in report.get("repairable", []):
            print(f"-- repairable: {note}")
        max_acked = max(lsn for lsn, _ in acked)
        if report["last_lsn"] < max_acked:
            return _fail(
                f"on-disk last_lsn {report['last_lsn']} < max acked "
                f"lsn {max_acked}: acknowledged suffix missing",
                EXIT_UNSOUND,
            )
        return phase_recover(
            _free_port(), data_dir, telemetry, acked, args.slo
        )
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
