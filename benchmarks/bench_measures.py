"""B7 — repair-based inconsistency measures across violation rates.

The Section-8 endnote: repairs give a basis for measuring the degree of
inconsistency of a database.  The measures must (and do) grow
monotonically with the number of injected violations; these benchmarks
track their cost as the workload dirties.
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.measures import (
    InconsistencyReport,
    cardinality_repair_measure,
    g3_measure,
    violation_ratio,
)
from repro.workloads import employee_key_violations, supply_chain


@pytest.mark.parametrize("k", [1, 4, 8])
def test_cardinality_measure(benchmark, k):
    scenario = employee_key_violations(8, k, 2, seed=9)
    measure = benchmark(
        cardinality_repair_measure, scenario.db, scenario.constraints
    )
    assert 0 < measure < 1


@pytest.mark.parametrize("k", [1, 4, 8])
def test_violation_ratio(benchmark, k):
    scenario = employee_key_violations(8, k, 2, seed=9)
    ratio = benchmark(
        violation_ratio, scenario.db, scenario.constraints
    )
    assert ratio == pytest.approx(2 * k / (8 + 2 * k))


def test_g3_measure(benchmark):
    scenario = employee_key_violations(8, 4, 2, seed=9)
    g3 = benchmark(g3_measure, scenario.db, scenario.constraints)
    assert g3 == pytest.approx(
        cardinality_repair_measure(scenario.db, scenario.constraints)
    )


def test_full_report_with_tgds(benchmark):
    scenario = supply_chain(12, 0.25, seed=4)
    report = benchmark(
        InconsistencyReport.of, scenario.db, scenario.constraints
    )
    assert report.size == len(scenario.db)


def test_measures_monotone(benchmark):
    def sweep():
        values = []
        for k in (0, 2, 4, 6):
            scenario = employee_key_violations(8, k, 2, seed=9)
            values.append(cardinality_repair_measure(
                scenario.db, scenario.constraints
            ))
        return values

    values = benchmark(sweep)
    assert values == sorted(values)
    assert values[0] == 0.0


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
