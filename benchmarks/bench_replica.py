"""B14 — Replication: shipping cost, apply throughput, catch-up time.

Replication must not tax the primary: the headline gate —
``test_pull_overhead_vs_serve_p50`` — *asserts* that serving one
replica pull (the in-memory tail slice a caught-up follower's
long-poll re-checks) costs less than 10% of the serve p50, so a
regression that turns WAL shipping into a per-pull disk scan fails
the suite instead of quietly stealing primary capacity.  The
remaining benchmarks track the follower-side apply throughput (the
ceiling on how fast a replica can drain lag) and the snapshot
bootstrap path (how long a blank follower takes to become servable).
"""

import itertools
import shutil
import statistics
import tempfile
import time

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.dispatch import DispatchPolicy, PoolConfig, WorkerPool
from repro.serve import (
    AdmissionController,
    CQAService,
    TenantPolicy,
)
from repro.serve.store import StorePolicy, TenantStore

EMPLOYEE_SPEC = {
    "relations": {
        "Employee": {
            "columns": ["Name", "Salary"],
            "key": ["Name"],
            "rows": [
                ["page", "5K"],
                ["page", "8K"],
                ["smith", "3K"],
                ["stowe", "7K"],
            ],
        },
        "Audit": {"columns": ["K", "V"], "rows": []},
    },
    "constraints": {"fd": ["Employee: Name -> Salary"]},
}

RECORDS_PER_ROUND = 100

_seq = itertools.count(1)


@pytest.fixture
def scratch_dir():
    path = tempfile.mkdtemp(prefix="bench_replica_")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _seed_primary(directory, mutations):
    store = TenantStore(
        directory, StorePolicy(fsync="never", compact_every=10**9)
    )
    store.recover()
    store.append_put_db("emp", EMPLOYEE_SPEC)
    for i in range(mutations):
        store.append_mutate(
            "emp", insert=[["Audit", f"seed{i:06d}", "v"]], delete=[]
        )
    return store


def test_records_since_tail_slice(benchmark, scratch_dir):
    """Shipping cost on the primary: slicing + deep-copying a
    100-record tail out of a 500-record stream (what one follower
    pull costs the primary at 100 records of lag)."""
    store = _seed_primary(f"{scratch_dir}/p", 500)
    from_lsn = store.last_lsn - RECORDS_PER_ROUND

    def ship_once():
        records = store.records_since(from_lsn)
        assert len(records) == RECORDS_PER_ROUND
        return records

    benchmark(ship_once)
    store.close()


def test_apply_replicated_throughput(benchmark, scratch_dir):
    """Follower-side drain rate: durably applying a 100-record shipped
    batch (WAL append + spec apply per record) — the ceiling on how
    fast a lagging replica catches up.  Each round replays the same
    batch into a blank follower so the measured stream never runs dry."""
    primary = _seed_primary(f"{scratch_dir}/p", RECORDS_PER_ROUND)
    batch = primary.records_since(0)
    rounds = itertools.count(1)

    def apply_batch():
        follower = TenantStore(
            f"{scratch_dir}/f{next(rounds)}",
            StorePolicy(fsync="never", compact_every=10**9),
        )
        follower.recover()
        for record in batch:
            assert follower.apply_replicated(record) is True
        assert follower.last_lsn == primary.last_lsn
        follower.close()

    benchmark(apply_batch)
    primary.close()


def test_snapshot_bootstrap_catch_up(benchmark, scratch_dir):
    """Blank-follower catch-up: adopt a 500-mutation primary's state
    transfer (parse + snapshot write + WAL reset) — the path a new or
    hopelessly lagged follower takes instead of replaying the stream."""
    primary = _seed_primary(f"{scratch_dir}/p", 500)
    transfer = primary.state_transfer()
    rounds = itertools.count(1)

    def bootstrap_once():
        follower = TenantStore(
            f"{scratch_dir}/f{next(rounds)}",
            StorePolicy(fsync="never"),
        )
        follower.recover()
        follower.install_state(
            transfer["databases"], transfer["lsn"], transfer["epoch"]
        )
        assert follower.last_lsn == primary.last_lsn
        follower.close()

    benchmark(bootstrap_once)
    primary.close()


def test_pull_overhead_vs_serve_p50(scratch_dir):
    """The replication tax gate: the steady-state replica pull — the
    handler path a *caught-up* follower's poll exercises on every
    cycle — must cost < 10% of the serve p50 (median CQA request
    through the service), so shipping WAL to followers never becomes
    a first-order cost on the primary.  (The cost of shipping an
    actual record tail is amortized per shipped record and tracked by
    ``test_records_since_tail_slice``.)"""
    pool = WorkerPool(PoolConfig(size=1)).start()
    service = CQAService(
        policy=DispatchPolicy(isolate=("fm-sql",)),
        pool=pool,
        admission=AdmissionController(TenantPolicy()),
        store=TenantStore(
            scratch_dir,
            StorePolicy(fsync="never", compact_every=10**9),
        ),
    )
    service.recover()
    service.register_db("emp", EMPLOYEE_SPEC)
    for i in range(100):
        service.store.append_mutate(
            "emp", insert=[["Audit", f"seed{i:06d}", "v"]], delete=[]
        )
    payload = {
        "db": "emp",
        "query": "Q(X) :- Employee(X, Y)",
        "timeout_s": 20.0,
    }
    # Warm the pool and the engine caches before sampling.
    for _ in range(3):
        status, body, _ = service.handle_cqa(dict(payload))
        assert status == 200, body

    serve_samples = []
    for _ in range(15):
        t0 = time.perf_counter()
        status, body, _ = service.handle_cqa(dict(payload))
        serve_samples.append(time.perf_counter() - t0)
        assert status == 200, body

    pull_samples = []
    last = service.store.last_lsn
    for _ in range(200):
        t0 = time.perf_counter()
        status, body, _ = service.handle_replica_pull(
            {
                "from_lsn": last,
                "epoch": 0,
                "follower": "bench",
                "wait_s": 0.0,
            }
        )
        pull_samples.append(time.perf_counter() - t0)
        assert status == 200, body
        assert body["records"] == []
    service.close()

    serve_p50 = statistics.median(serve_samples)
    pull_p50 = statistics.median(pull_samples)
    ratio = pull_p50 / serve_p50
    print(
        f"\nreplication tax: serve p50 {serve_p50 * 1000:.2f}ms  "
        f"pull p50 {pull_p50 * 1000:.3f}ms  "
        f"ratio {ratio * 100:.1f}%"
    )
    assert ratio < 0.10, (
        f"replica pull overhead is {ratio * 100:.1f}% of serve p50 "
        f"(gate: <10%) — pull p50 {pull_p50 * 1000:.3f}ms vs "
        f"serve p50 {serve_p50 * 1000:.2f}ms"
    )


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
