"""B9 — extension features: aggregates, priorities, probabilistic answers.

Covers the "further developments" the paper points at beyond the core:
range-consistent aggregation ([5]), prioritized repairing ([103]), and
probabilistic clean answers ([2]).  Each benchmark cross-checks the fast
path against the defining enumeration.
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.constraints import FunctionalDependency
from repro.cqa import (
    AggregateQuery,
    fd_range_sum,
    range_consistent_answer,
)
from repro.logic import atom, cq, vars_
from repro.probabilistic import (
    DirtyDatabase,
    clean_answers,
    clean_answers_single_atom,
)
from repro.repairs import PriorityRelation, globally_optimal_repairs
from repro.workloads import employee_key_violations

X, Y = vars_("x y")


def _salary_scenario(k):
    return employee_key_violations(8, k, 2, seed=21)


@pytest.mark.parametrize("k", [2, 5, 8])
def test_aggregate_range_enumeration(benchmark, k):
    scenario = _salary_scenario(k)
    query = AggregateQuery("Employee", "sum", "Salary")
    r = benchmark(
        range_consistent_answer, scenario.db, scenario.constraints, query
    )
    assert r.glb is not None and r.glb <= r.lub


@pytest.mark.parametrize("k", [2, 5, 8, 16])
def test_aggregate_range_closed_form(benchmark, k):
    scenario = _salary_scenario(k)
    (kc,) = scenario.constraints
    r = benchmark(fd_range_sum, scenario.db, kc, "Salary")
    if k <= 8:
        exact = range_consistent_answer(
            scenario.db, scenario.constraints,
            AggregateQuery("Employee", "sum", "Salary"),
        )
        assert (r.glb, r.lub) == (exact.glb, exact.lub)


@pytest.mark.parametrize("k", [2, 4])
def test_prioritized_repairs(benchmark, k):
    scenario = _salary_scenario(k)
    priority = PriorityRelation.from_score(
        scenario.db, lambda f: float(f.values[1])
    )
    preferred = benchmark(
        globally_optimal_repairs,
        scenario.db, scenario.constraints, priority,
    )
    # The highest salary dominates in every group: one preferred repair.
    assert len(preferred) == 1


@pytest.mark.parametrize("k", [2, 5])
def test_probabilistic_enumeration(benchmark, k):
    scenario = _salary_scenario(k)
    (kc,) = scenario.constraints
    dirty = DirtyDatabase(scenario.db, kc)
    q = cq([X], [atom("Employee", X, Y)], name="names")
    probs = benchmark(clean_answers, dirty, q)
    assert all(p == pytest.approx(1.0) for _, p in probs)


@pytest.mark.parametrize("k", [2, 5, 16])
def test_probabilistic_closed_form(benchmark, k):
    scenario = _salary_scenario(k)
    (kc,) = scenario.constraints
    dirty = DirtyDatabase(scenario.db, kc)
    q = cq([X, Y], [atom("Employee", X, Y)], name="rows")
    fast = benchmark(clean_answers_single_atom, dirty, q)
    if k <= 5:
        exact = dict(clean_answers(dirty, q))
        for row, p in fast:
            assert p == pytest.approx(exact[row])


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
