"""B10 — Section 8 directions: OBDA, data exchange, operational CQA.

Shapes demonstrated:

* IAR is a sound, cheaper under-approximation of AR (OBDA);
* exchange-repair certain answers drop exactly the conflicted exchanged
  data;
* the operational distribution is exact yet exponential — sampling is
  the tractable estimator;
* the ConsEx-style query slicing shrinks repair programs.
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.asp import RepairProgram
from repro.constraints import DenialConstraint, FunctionalDependency
from repro.cqa.operational import (
    estimate_answer_probabilities,
    operational_repair_distribution,
)
from repro.datalog import rule
from repro.exchange import ExchangeSetting
from repro.logic import atom, cq, vars_
from repro.obda import Ontology
from repro.relational import Database, RelationSchema, Schema
from repro.workloads import employee_key_violations, random_rs_instance

X, Y, Z = vars_("x y z")


def _ontology_and_abox(n: int):
    ontology = Ontology(
        tbox=(
            rule(atom("Person", X), [atom("Prof", X)]),
            rule(atom("Person", X), [atom("Student", X)]),
        ),
        negative_constraints=(
            DenialConstraint(
                (atom("Prof", X), atom("Student", X)), name="disjoint"
            ),
        ),
    )
    profs = [(f"p{i}",) for i in range(n)]
    students = [(f"p{i}",) for i in range(0, n, 2)] + [("only",)]
    abox = Database.from_dict({"Prof": profs, "Student": students})
    return ontology, abox


@pytest.mark.parametrize("n", [2, 4, 6])
def test_obda_ar_answers(benchmark, n):
    ontology, abox = _ontology_and_abox(n)
    q = cq([X], [atom("Person", X)], name="persons")
    ar = benchmark(ontology.ar_answers, abox, q)
    iar = ontology.iar_answers(abox, q)
    assert iar <= ar  # IAR under-approximates AR


@pytest.mark.parametrize("n", [2, 4, 6])
def test_obda_iar_answers(benchmark, n):
    ontology, abox = _ontology_and_abox(n)
    q = cq([X], [atom("Person", X)], name="persons")
    iar = benchmark(ontology.iar_answers, abox, q)
    assert ("only",) in iar


def test_exchange_certain_answers(benchmark):
    source_schema = Schema.of(RelationSchema("Emp", ("Name", "Dept")))
    target_schema = Schema.of(
        RelationSchema("Worker", ("Name", "Dept", "Office")),
    )
    from repro.constraints import TupleGeneratingDependency

    st = TupleGeneratingDependency(
        (atom("Emp", X, Y),), (atom("Worker", X, Y, Z),), name="st"
    )
    fd = FunctionalDependency("Worker", ("Name",), ("Dept",))
    setting = ExchangeSetting(
        source_schema, target_schema, (st,), (fd,)
    )
    rows = [(f"e{i}", f"d{i % 3}") for i in range(8)]
    rows += [("e0", "dX"), ("e1", "dY")]  # conflicted employees
    source = Database.from_dict({"Emp": rows}, schema=source_schema)
    q = cq([X, Y], [atom("Worker", X, Y, Z)], name="who")
    certain = benchmark(setting.certain_answers, source, q)
    assert ("e2", "d2") in certain
    assert not any(name == "e0" for name, _ in certain)


@pytest.mark.parametrize("k", [2, 4])
def test_operational_exact_distribution(benchmark, k):
    scenario = employee_key_violations(4, k, 2, seed=3)
    distribution = benchmark(
        operational_repair_distribution,
        scenario.db, scenario.constraints,
    )
    assert sum(p for _, p in distribution) == pytest.approx(1.0)


def test_operational_sampling_estimator(benchmark):
    scenario = employee_key_violations(4, 6, 2, seed=3)
    q = cq([X], [atom("Employee", X, Y)], name="names")
    estimates = benchmark(
        estimate_answer_probabilities,
        scenario.db, scenario.constraints, q, 50, 0,
    )
    assert all(0 < p <= 1 for p in estimates.values())


def test_consex_slicing_speedup(benchmark):
    # Two unrelated constrained relations; the query sees only one.
    schema = Schema.of(
        RelationSchema("Employee", ("Name", "Salary"), key=("Name",)),
        RelationSchema("Rooms", ("Room", "Floor"), key=("Room",)),
    )
    emp = employee_key_violations(4, 2, 2, seed=1).db.relation("Employee")
    rooms = [(f"r{i % 3}", i) for i in range(6)]
    db = Database.from_dict(
        {"Employee": emp, "Rooms": rooms}, schema=schema
    )
    constraints = (
        FunctionalDependency("Employee", ("Name",), ("Salary",)),
        FunctionalDependency("Rooms", ("Room",), ("Floor",)),
    )
    q = cq([X], [atom("Employee", X, Y)], name="names")
    rp = RepairProgram(db, constraints)
    full = rp.consistent_answers(q)
    sliced = benchmark(rp.consistent_answers, q, "s", True)
    assert sliced == full


def test_dimension_repairs(benchmark):
    from repro.mdim import Dimension, dimension_repairs

    dimension = Dimension(
        categories={
            "City": frozenset({f"c{i}" for i in range(4)}),
            "Region": frozenset({"r1", "r2"}),
            "Country": frozenset({"k"}),
        },
        hierarchy=frozenset({("City", "Region"), ("Region", "Country")}),
        rollup=frozenset(
            {(f"c{i}", "r1") for i in range(4)}
            | {("c0", "r2"), ("c1", "r2")}     # two double parents
            | {("r1", "k"), ("r2", "k")}
        ),
    )
    repairs = benchmark(dimension_repairs, dimension)
    assert all(r.repaired.is_summarizable() for r in repairs)


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
