"""B1 — repair counts grow exponentially; closed-form counting stays flat.

The paper notes "it is easy to produce examples of databases that have
exponentially many repairs in the size of the database" (Section 3.1).
The workload injects k key-violating groups; the S-repair count is 2^k.
The benchmarks contrast enumerating all repairs with the closed-form
count (the ablation pair of DESIGN.md).
"""

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.repairs import count_fd_repairs, s_repairs
from repro.workloads import employee_key_violations


@pytest.mark.parametrize("k", [2, 4, 6, 8])
def test_enumerate_repairs(benchmark, k):
    scenario = employee_key_violations(5, k, 2, seed=7)
    repairs = benchmark(s_repairs, scenario.db, scenario.constraints)
    assert len(repairs) == 2 ** k


@pytest.mark.parametrize("k", [2, 4, 6, 8, 16, 32])
def test_closed_form_count(benchmark, k):
    scenario = employee_key_violations(5, k, 2, seed=7)
    (kc,) = scenario.constraints
    count = benchmark(count_fd_repairs, scenario.db, kc)
    assert count == 2 ** k


@pytest.mark.parametrize("group_size", [2, 3, 4])
def test_count_scales_with_group_size(benchmark, group_size):
    scenario = employee_key_violations(5, 4, group_size, seed=7)
    (kc,) = scenario.constraints
    count = benchmark(count_fd_repairs, scenario.db, kc)
    assert count == group_size ** 4


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
