"""B13 — Durable tenant state: WAL append, compaction, recovery cost.

Durability is only free when nobody measures it.  This suite pins the
cost of the write-ahead log against the serving path it protects: the
headline gate — ``test_wal_overhead_vs_serve_p50`` — *asserts* that a
durable WAL append (the serving-default ``interval`` fsync policy)
costs less than 15% of the serve p50, so a regression that turns every
mutation into a synchronous disk stall fails the suite instead of
quietly doubling tail latency.  The remaining benchmarks track the
absolute append cost per fsync policy, snapshot compaction, and
crash-recovery replay — the numbers behind the fsync-policy tradeoff
table in DESIGN.md.
"""

import itertools
import shutil
import statistics
import tempfile
import time

import pytest

import _benchlib  # noqa: F401  (sys.path bootstrap for direct runs)

from repro.dispatch import DispatchPolicy, PoolConfig, WorkerPool
from repro.serve import (
    AdmissionController,
    CQAService,
    TenantPolicy,
)
from repro.serve.store import StorePolicy, TenantStore
from repro.serve.store.wal import WriteAheadLog

EMPLOYEE_SPEC = {
    "relations": {
        "Employee": {
            "columns": ["Name", "Salary"],
            "key": ["Name"],
            "rows": [
                ["page", "5K"],
                ["page", "8K"],
                ["smith", "3K"],
                ["stowe", "7K"],
            ],
        },
        "Audit": {"columns": ["K", "V"], "rows": []},
    },
    "constraints": {"fd": ["Employee: Name -> Salary"]},
}

APPENDS_PER_ROUND = 100

_seq = itertools.count(1)


def _mutation_payload():
    i = next(_seq)
    return {"insert": [["Audit", f"bench{i:09d}", "v"]]}


@pytest.fixture
def scratch_dir():
    path = tempfile.mkdtemp(prefix="bench_store_")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _append_batch(wal, count=APPENDS_PER_ROUND):
    for _ in range(count):
        i = next(_seq)
        wal.append(
            {"lsn": i, "op": "mutate", "db": "emp",
             "insert": [["Audit", f"bench{i:09d}", "v"]], "delete": []}
        )


@pytest.mark.parametrize("policy", ["never", "interval", "always"])
def test_wal_append(benchmark, scratch_dir, policy):
    """Cost of one durable append batch per fsync policy (the rows of
    the DESIGN.md tradeoff table)."""
    wal = WriteAheadLog(
        f"{scratch_dir}/wal-{policy}.log",
        fsync=policy,
        fsync_interval=16,
    ).open()
    benchmark(_append_batch, wal)
    wal.close()


def test_snapshot_compaction(benchmark, scratch_dir):
    """Folding a 200-record WAL into a content-addressed snapshot."""
    store = TenantStore(
        scratch_dir, StorePolicy(fsync="never", compact_every=10**9)
    )
    store.recover()
    store.append_put_db("emp", EMPLOYEE_SPEC)
    for i in range(200):
        store.append_mutate(
            "emp", insert=[["Audit", f"seed{i:05d}", "v"]], delete=[]
        )
    benchmark(store.compact)
    store.close()


def test_recovery_replay(benchmark, scratch_dir):
    """Crash-only startup: scan + CRC-verify + replay a 500-record WAL
    (the recovery-time SLO's unit cost)."""
    seeder = TenantStore(
        scratch_dir, StorePolicy(fsync="never", compact_every=10**9)
    )
    seeder.recover()
    seeder.append_put_db("emp", EMPLOYEE_SPEC)
    for i in range(500):
        seeder.append_mutate(
            "emp", insert=[["Audit", f"seed{i:05d}", "v"]], delete=[]
        )
    seeder.close()

    def recover_once():
        store = TenantStore(scratch_dir, StorePolicy(fsync="never"))
        recovered = store.recover()
        store.close()
        assert recovered.records_replayed == 501
        return recovered

    benchmark(recover_once)


def test_durable_mutation_request(benchmark, scratch_dir):
    """The full mutation path — parse, validate, WAL append (interval
    fsync), registry swap — as served to a tenant."""
    pool = WorkerPool(PoolConfig(size=1)).start()
    service = CQAService(
        policy=DispatchPolicy(isolate=("fm-sql",)),
        pool=pool,
        admission=AdmissionController(TenantPolicy()),
        store=TenantStore(
            scratch_dir, StorePolicy(fsync="interval", fsync_interval=16)
        ),
    )
    service.recover()
    service.register_db("emp", EMPLOYEE_SPEC)

    def mutate_once():
        status, body, _ = service.handle_mutate(
            "emp", _mutation_payload()
        )
        assert status == 200 and "lsn" in body
        return body

    benchmark(mutate_once)
    service.close()


def test_wal_overhead_vs_serve_p50(scratch_dir):
    """The durability tax gate: the WAL append a mutation adds on top
    of the in-memory registry swap — under the serving-default fsync
    policy — must cost < 15% of the serve p50 (median CQA request
    through the service)."""
    pool = WorkerPool(PoolConfig(size=1)).start()
    service = CQAService(
        policy=DispatchPolicy(isolate=("fm-sql",)),
        pool=pool,
        admission=AdmissionController(TenantPolicy()),
        store=TenantStore(
            scratch_dir, StorePolicy(fsync="interval", fsync_interval=16)
        ),
    )
    service.recover()
    service.register_db("emp", EMPLOYEE_SPEC)
    payload = {
        "db": "emp",
        "query": "Q(X) :- Employee(X, Y)",
        "timeout_s": 20.0,
    }
    # Warm the pool and the engine caches before sampling.
    for _ in range(3):
        status, body, _ = service.handle_cqa(dict(payload))
        assert status == 200, body

    serve_samples = []
    for _ in range(15):
        t0 = time.perf_counter()
        status, body, _ = service.handle_cqa(dict(payload))
        serve_samples.append(time.perf_counter() - t0)
        assert status == 200, body

    append_samples = []
    for _ in range(200):
        i = next(_seq)
        t0 = time.perf_counter()
        lsn = service.store.append_mutate(
            "emp", insert=[["Audit", f"bench{i:09d}", "v"]], delete=[]
        )
        append_samples.append(time.perf_counter() - t0)
        assert lsn > 0
    service.close()

    serve_p50 = statistics.median(serve_samples)
    append_p50 = statistics.median(append_samples)
    ratio = append_p50 / serve_p50
    print(
        f"\ndurability tax: serve p50 {serve_p50 * 1000:.2f}ms  "
        f"WAL append p50 {append_p50 * 1000:.3f}ms  "
        f"ratio {ratio * 100:.1f}%"
    )
    assert ratio < 0.15, (
        f"WAL append overhead is {ratio * 100:.1f}% of serve p50 "
        f"(gate: <15%) — append p50 {append_p50 * 1000:.3f}ms vs "
        f"serve p50 {serve_p50 * 1000:.2f}ms"
    )


if __name__ == "__main__":
    from _benchlib import main as _bench_main

    raise SystemExit(_bench_main(__file__))
