"""Tests for the trace-analysis layer (repro.observability.analysis)."""

import json
import pathlib
import shutil

import pytest

from repro.observability import build_trees, collect, read_trace, span
from repro.observability.analysis import (
    EXIT_BENCH_SET,
    EXIT_COUNTERS,
    EXIT_OK,
    EXIT_TIMING,
    MemoryProfiler,
    aggregate,
    check_baselines,
    critical_path,
    diff_suites,
    exit_code,
    profile_memory,
    render_flamegraph,
    render_report,
    trace_totals,
)
from repro.observability.analysis.regression import load_suite


def _node(name, duration, children=(), metrics=None, start=0.0):
    return {
        "name": name,
        "duration_s": duration,
        "start": start,
        "attributes": {},
        "metrics": dict(metrics or {}),
        "children": list(children),
    }


class TestAggregate:
    def test_self_time_excludes_children(self):
        tree = _node(
            "outer", 1.0,
            children=[_node("inner", 0.3), _node("inner", 0.4)],
        )
        stats = {s.name: s for s in aggregate([tree])}
        assert stats["outer"].total_s == pytest.approx(1.0)
        assert stats["outer"].self_s == pytest.approx(0.3)
        assert stats["inner"].calls == 2
        assert stats["inner"].total_s == pytest.approx(0.7)
        assert stats["inner"].self_s == pytest.approx(0.7)

    def test_self_time_clamped_against_clock_jitter(self):
        # Children summing past the parent (monotonic clock jitter)
        # must not produce negative self time.
        tree = _node("outer", 0.1, children=[_node("inner", 0.2)])
        stats = {s.name: s for s in aggregate([tree])}
        assert stats["outer"].self_s == 0.0

    def test_counter_sums_per_name(self):
        forest = [
            _node("work", 0.1, metrics={"repairs.s_emitted": 2}),
            _node("work", 0.1, metrics={"repairs.s_emitted": 3}),
        ]
        stats = {s.name: s for s in aggregate(forest)}
        assert stats["work"].counters == {"repairs.s_emitted": 5}

    def test_zero_duration_spans(self):
        tree = _node("instant", 0.0, children=[_node("child", 0.0)])
        stats = {s.name: s for s in aggregate([tree])}
        assert stats["instant"].total_s == 0.0
        assert stats["instant"].self_s == 0.0
        assert trace_totals([tree]) == {
            "trees": 1, "spans": 2, "wall_s": 0.0,
        }
        assert [n["name"] for n in critical_path(tree)] == [
            "instant", "child",
        ]

    def test_open_span_counts_as_zero(self):
        tree = _node("open", None)
        assert aggregate([tree])[0].total_s == 0.0


class TestCriticalPath:
    def test_picks_slowest_child_at_each_level(self):
        tree = _node(
            "root", 1.0,
            children=[
                _node("fast", 0.2, children=[_node("fast-leaf", 0.19)]),
                _node("slow", 0.7, children=[
                    _node("slow-a", 0.1), _node("slow-b", 0.5),
                ]),
            ],
        )
        assert [n["name"] for n in critical_path(tree)] == [
            "root", "slow", "slow-b",
        ]

    def test_singleton_tree(self):
        tree = _node("only", 0.5)
        assert [n["name"] for n in critical_path(tree)] == ["only"]


class TestReport:
    def test_report_over_real_trace(self, tmp_path):
        with collect() as c:
            with span("outer"):
                from repro.observability import add

                add("repairs.s_emitted", 2)
                with span("inner"):
                    pass
        path = tmp_path / "t.jsonl"
        c.write_trace(path)
        roots = build_trees(read_trace(path))
        text = render_report(roots)
        assert "outer" in text and "inner" in text
        assert "repairs.s_emitted=2" in text
        assert "critical path" in text

    def test_report_top_limits_table(self):
        forest = [_node(f"name-{i}", 0.1) for i in range(10)]
        text = render_report(forest, top=3)
        assert "7 more span name(s)" in text


class TestFlamegraph:
    def test_html_smoke(self):
        tree = _node(
            "root", 1.0, start=100.0,
            children=[
                _node("left", 0.4, start=100.0,
                      metrics={"asp.ground_rules": 7}),
                _node("right", 0.5, start=100.45),
            ],
        )
        html = render_flamegraph([tree], title="smoke <test>")
        assert html.startswith("<!DOCTYPE html>")
        assert "smoke &lt;test&gt;" in html
        for name in ("root", "left", "right"):
            assert name in html
        assert "asp.ground_rules=7" in html
        # Children are positioned within the root's extent.
        assert 'data-l="0.0000" data-w="100.0000"' in html

    def test_empty_trace(self):
        html = render_flamegraph([])
        assert "empty trace" in html

    def test_zero_duration_root_does_not_divide_by_zero(self):
        tree = _node("instant", 0.0, children=[_node("child", 0.0)])
        assert "instant" in render_flamegraph([tree])


class TestMemoryProfiler:
    def test_spans_gain_memory_attributes(self):
        with collect() as c:
            with profile_memory(c.tracer):
                with span("alloc"):
                    blob = [0] * 50_000
                    del blob
        (s,) = c.spans
        assert s.attributes["mem_peak_kb"] > 100  # 50k ints ≈ 400kB
        assert "mem_net_kb" in s.attributes

    def test_child_peak_folds_into_parent(self):
        with collect() as c:
            with profile_memory(c.tracer):
                with span("outer"):
                    with span("inner"):
                        blob = [0] * 50_000
                        del blob
        (outer,) = c.spans
        (inner,) = outer.children
        assert (
            outer.attributes["mem_peak_kb"]
            >= inner.attributes["mem_peak_kb"]
        )

    def test_detach_removes_hook_and_stops_tracing(self):
        import tracemalloc

        with collect() as c:
            profiler = MemoryProfiler().attach(c.tracer)
            assert profiler in c.tracer.hooks
            assert tracemalloc.is_tracing()
            profiler.detach()
            assert profiler not in c.tracer.hooks
            assert not tracemalloc.is_tracing()
            with span("after"):
                pass
        (s,) = c.spans
        assert "mem_peak_kb" not in s.attributes


def _suite(records):
    return {"schema": 2, "suite": "unit", "results": records}


def _record(name, counters=None, median_s=0.01, **extra):
    record = {
        "name": name,
        "params": {},
        "rounds": 5,
        "best_s": median_s * 0.9,
        "mean_s": median_s * 1.1,
        "median_s": median_s,
        "counters": dict(counters or {}),
    }
    record.update(extra)
    return record


class TestDiffSuites:
    def test_identical_suites_pass(self):
        suite = _suite([_record("a", {"repairs.s_emitted": 4})])
        findings = diff_suites(suite, suite)
        assert findings == []
        assert exit_code(findings) == EXIT_OK

    def test_counter_drift_is_flagged_as_algorithm_change(self):
        old = _suite([_record("a", {"repairs.states_explored": 10})])
        new = _suite([_record("a", {"repairs.states_explored": 14})])
        findings = diff_suites(old, new)
        assert exit_code(findings) == EXIT_COUNTERS
        (finding,) = findings
        assert finding.kind == "counter"
        assert "10 -> 14" in finding.message
        assert "algorithm change" in finding.message

    def test_missing_counter_key_is_drift(self):
        old = _suite([_record("a", {"asp.ground_rules": 3})])
        new = _suite([_record("a", {})])
        findings = diff_suites(old, new)
        assert exit_code(findings) == EXIT_COUNTERS
        assert "3 -> absent" in findings[0].message

    def test_new_benchmark(self):
        old = _suite([_record("a")])
        new = _suite([_record("a"), _record("b")])
        findings = diff_suites(old, new)
        assert [f.kind for f in findings] == ["added"]
        assert exit_code(findings) == EXIT_BENCH_SET

    def test_removed_benchmark(self):
        old = _suite([_record("a"), _record("b")])
        new = _suite([_record("a")])
        findings = diff_suites(old, new)
        assert [f.kind for f in findings] == ["removed"]
        assert exit_code(findings) == EXIT_BENCH_SET

    def test_timing_regression_and_counters_only_demotion(self):
        old = _suite([_record("a", median_s=0.010)])
        new = _suite([_record("a", median_s=0.100)])
        findings = diff_suites(old, new, threshold=1.5)
        assert [f.kind for f in findings] == ["timing"]
        assert exit_code(findings) == EXIT_TIMING
        assert exit_code(findings, counters_only=True) == EXIT_OK

    def test_timing_within_threshold_passes(self):
        old = _suite([_record("a", median_s=0.010)])
        new = _suite([_record("a", median_s=0.012)])
        assert exit_code(diff_suites(old, new, threshold=1.5)) == EXIT_OK

    def test_speedup_is_advisory(self):
        old = _suite([_record("a", median_s=0.100)])
        new = _suite([_record("a", median_s=0.010)])
        findings = diff_suites(old, new)
        assert [f.kind for f in findings] == ["info"]
        assert exit_code(findings) == EXIT_OK

    def test_schema1_files_fall_back_to_best_s(self):
        old = _suite([_record("a")])
        del old["results"][0]["median_s"]
        new = _suite([_record("a")])
        del new["results"][0]["median_s"]
        assert exit_code(diff_suites(old, new)) == EXIT_OK

    def test_counter_drift_outranks_set_change_and_timing(self):
        old = _suite([
            _record("a", {"x": 1}, median_s=0.01), _record("gone"),
        ])
        new = _suite([_record("a", {"x": 2}, median_s=0.09)])
        assert exit_code(diff_suites(old, new)) == EXIT_COUNTERS

    def test_zero_duration_timing_is_skipped(self):
        old = _suite([_record("a", median_s=0.0)])
        old["results"][0]["best_s"] = 0.0
        new = _suite([_record("a", median_s=0.5)])
        assert exit_code(diff_suites(old, new)) == EXIT_OK


class TestCheckBaselines:
    def _write_suite(self, directory, suite_name, records):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{suite_name}.json"
        path.write_text(json.dumps(
            {"schema": 2, "suite": suite_name, "results": records}
        ))
        return path

    def test_matching_directories_pass(self, tmp_path):
        records = [_record("a", {"repairs.s_emitted": 2})]
        self._write_suite(tmp_path / "base", "unit", records)
        self._write_suite(tmp_path / "run", "unit", records)
        findings = check_baselines(tmp_path / "base", tmp_path / "run")
        assert exit_code(findings) == EXIT_OK

    def test_perturbed_counter_fails_the_gate(self, tmp_path):
        self._write_suite(
            tmp_path / "base", "unit",
            [_record("a", {"repairs.s_emitted": 2})],
        )
        self._write_suite(
            tmp_path / "run", "unit",
            [_record("a", {"repairs.s_emitted": 3})],
        )
        findings = check_baselines(tmp_path / "base", tmp_path / "run")
        assert exit_code(findings) == EXIT_COUNTERS
        assert "unit::a" in findings[0].name

    def test_missing_results_suite_is_flagged(self, tmp_path):
        self._write_suite(tmp_path / "base", "unit", [_record("a")])
        (tmp_path / "run").mkdir()
        findings = check_baselines(tmp_path / "base", tmp_path / "run")
        assert exit_code(findings) == EXIT_BENCH_SET

    def test_empty_baseline_dir_raises(self, tmp_path):
        (tmp_path / "base").mkdir()
        with pytest.raises(FileNotFoundError):
            check_baselines(tmp_path / "base", tmp_path / "base")

    def test_load_suite_rejects_non_suite_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text('["not", "a", "suite"]')
        with pytest.raises(ValueError):
            load_suite(path)


class TestCommittedBaselines:
    """The committed benchmarks/baselines/ reference set stays coherent."""

    BASELINES = (
        pathlib.Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "baselines"
    )

    def test_all_fourteen_suites_are_committed(self):
        names = sorted(
            p.stem[len("BENCH_"):]
            for p in self.BASELINES.glob("BENCH_*.json")
        )
        assert names == [
            "asp", "causality", "cqa_methods", "crepairs", "extensions",
            "further_developments", "incremental", "measures",
            "paper_examples", "replica", "scaling", "serve",
            "sql_rewriting", "store",
        ]

    def test_obs_diff_round_trips_every_baseline(self):
        for path in self.BASELINES.glob("BENCH_*.json"):
            suite = load_suite(path)
            assert suite["results"], f"{path.name}: empty suite"
            assert diff_suites(suite, suite) == [], path.name

    def test_deliberately_perturbed_counter_exits_nonzero(self, tmp_path):
        from repro.cli import main

        results = tmp_path / "results"
        shutil.copytree(self.BASELINES, results)
        victim = results / "BENCH_scaling.json"
        data = json.loads(victim.read_text())
        record = next(
            r for r in data["results"] if r["counters"]
        )
        key = sorted(record["counters"])[0]
        record["counters"][key] += 1
        victim.write_text(json.dumps(data))
        rc = main([
            "obs", "check",
            "--baseline", str(self.BASELINES),
            "--results", str(results),
            "--counters-only",
        ])
        assert rc == EXIT_COUNTERS


class TestObsCli:
    def test_obs_report_and_flamegraph_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        csv = tmp_path / "emp.csv"
        csv.write_text("Name,Salary\npage,5K\npage,8K\n")
        trace = tmp_path / "run.jsonl"
        assert main([
            "repairs", "--csv", f"Employee={csv}",
            "--fd", "Employee: Name -> Salary",
            "--trace", str(trace),
        ]) == 0
        capsys.readouterr()

        assert main(["obs", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "repairs.s_repairs" in out and "critical path" in out

        out_html = tmp_path / "flame.html"
        assert main([
            "obs", "flamegraph", str(trace), "-o", str(out_html),
        ]) == 0
        assert out_html.read_text().startswith("<!DOCTYPE html>")

    def test_obs_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(
            _suite([_record("a", {"conflicts.edges": 1})])
        ))
        new.write_text(json.dumps(
            _suite([_record("a", {"conflicts.edges": 2})])
        ))
        assert main(["obs", "diff", str(old), str(new)]) == EXIT_COUNTERS
        assert "counter drift" in capsys.readouterr().out
        assert main(["obs", "diff", str(old), str(old)]) == EXIT_OK

    def test_obs_diff_missing_file_is_bad_input(self, tmp_path, capsys):
        from repro.cli import main

        present = tmp_path / "old.json"
        present.write_text(json.dumps(_suite([_record("a")])))
        rc = main([
            "obs", "diff", str(present), str(tmp_path / "missing.json"),
        ])
        assert rc == 2

    def test_obs_check_against_directories(self, tmp_path, capsys):
        from repro.cli import main

        base = tmp_path / "baselines"
        run = tmp_path / "results"
        for directory in (base, run):
            directory.mkdir()
            (directory / "BENCH_unit.json").write_text(json.dumps(
                _suite([_record("a", {"repairs.s_emitted": 2})])
            ))
        assert main([
            "obs", "check", "--baseline", str(base), "--results", str(run),
        ]) == EXIT_OK
        assert "OK" in capsys.readouterr().out


class TestTraceIO:
    def test_rewriting_a_trace_truncates_stale_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with collect() as c:
            for i in range(5):
                with span(f"first-{i}"):
                    pass
        assert c.write_trace(path) == 6  # 5 spans + metrics line
        with collect() as c2:
            with span("second"):
                pass
        assert c2.write_trace(path) == 2
        records = read_trace(path)
        names = [r.get("name") for r in records if "span_id" in r]
        assert names == ["second"]

    def test_read_trace_skips_corrupt_and_blank_lines(self, tmp_path, caplog):
        path = tmp_path / "t.jsonl"
        good = json.dumps({"span_id": 1, "name": "ok", "duration_s": 0.1})
        path.write_text(
            f"{good}\n\n{{truncated\n42\n{good}\n"
        )
        with caplog.at_level("WARNING", logger="repro.observability"):
            records = read_trace(path)
        assert len(records) == 2
        assert all(r["name"] == "ok" for r in records)
        assert sum(
            "skipping" in message for message in caplog.messages
        ) == 2


class TestHistogramPercentiles:
    def test_percentiles_in_snapshot(self):
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("latency", float(value))
        snap = registry.snapshot()
        assert snap["latency.p50"] == pytest.approx(50.5)
        assert snap["latency.p90"] == pytest.approx(90.1)
        assert snap["latency.p99"] == pytest.approx(99.01)

    def test_empty_histogram_percentile_is_none(self):
        from repro.observability import Histogram

        assert Histogram().percentile(50) is None

    def test_reservoir_bounds_memory_and_stays_deterministic(self):
        from repro.observability import Histogram

        def fill():
            histogram = Histogram()
            for value in range(10_000):
                histogram.observe(float(value))
            return histogram

        first, second = fill(), fill()
        assert len(first._reservoir) == Histogram.RESERVOIR_SIZE
        assert first._reservoir == second._reservoir
        # The estimate stays in the right ballpark on a uniform stream.
        assert first.percentile(50) == pytest.approx(5000, rel=0.15)

    def test_single_observation(self):
        from repro.observability import Histogram

        histogram = Histogram()
        histogram.observe(3.5)
        for p in (50, 90, 99):
            assert histogram.percentile(p) == 3.5
