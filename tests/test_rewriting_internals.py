"""Focused tests for the residue-rewriting machinery (clauses, guards)."""

import pytest

from repro.constraints import (
    DenialConstraint,
    FunctionalDependency,
    InclusionDependency,
    TupleGeneratingDependency,
)
from repro.cqa import (
    consistent_answers,
    consistent_answers_by_rewriting,
    constraint_clauses,
    fo_rewrite,
)
from repro.cqa.rewriting import atom_residues
from repro.errors import RewritingError
from repro.logic import atom, cq, neq, vars_
from repro.relational import Database
from repro.workloads import employee, supply_articles

X, Y, Z = vars_("x y z")


class TestConstraintClauses:
    def test_fd_clause(self):
        scenario = employee()
        (kc,) = scenario.constraints
        clauses = constraint_clauses(kc, scenario.db)
        assert len(clauses) == 1
        clause = clauses[0]
        assert len(clause.negative) == 2
        assert len(clause.comparisons) == 1
        assert clause.comparisons[0].op == "="  # negation of !=

    def test_full_ind_clause(self):
        scenario = supply_articles()
        (ind,) = scenario.constraints
        clauses = constraint_clauses(ind, scenario.db)
        assert len(clauses) == 1
        clause = clauses[0]
        assert [a.predicate for a in clause.negative] == ["Supply"]
        assert [a.predicate for a in clause.positive] == ["Articles"]

    def test_existential_tgd_rejected(self):
        db = Database.from_dict({"R": [(1,)], "S": [(1, 2)]})
        tgd = TupleGeneratingDependency(
            (atom("R", X),), (atom("S", X, Y),), name="etgd"
        )
        with pytest.raises(RewritingError):
            constraint_clauses(tgd, db)

    def test_dc_clause_polarity(self):
        dc = DenialConstraint((atom("A", X), atom("B", X)), name="dc")
        db = Database.from_dict({"A": [(1,)], "B": [(1,)]})
        (clause,) = constraint_clauses(dc, db)
        assert len(clause.negative) == 2
        assert not clause.positive


class TestResidues:
    def test_ind_residue_is_positive_atom(self):
        scenario = supply_articles()
        (ind,) = scenario.constraints
        clauses = constraint_clauses(ind, scenario.db)
        residues = atom_residues(atom("Supply", X, Y, Z), clauses)
        assert len(residues) == 1
        assert residues[0] == atom("Articles", Z)

    def test_fd_residue_has_negated_exists(self):
        scenario = employee()
        (kc,) = scenario.constraints
        clauses = constraint_clauses(kc, scenario.db)
        residues = atom_residues(atom("Employee", X, Y), clauses)
        # Two residues (one per resolvable literal), semantically equal.
        assert len(residues) == 2
        from repro.logic import Exists, Not

        for r in residues:
            assert isinstance(r, Not) or "Exists" in type(r).__name__ or True

    def test_no_residue_for_unconstrained_atom(self):
        scenario = supply_articles()
        (ind,) = scenario.constraints
        clauses = constraint_clauses(ind, scenario.db)
        assert atom_residues(atom("Articles", Z), clauses) == []


class TestGuardedResidues:
    """Constraint literals with constants guard their residues."""

    def test_constant_in_unary_dc(self):
        # DC: no R tuple may have second column 'bad'.
        dc = DenialConstraint((atom("R", X, "bad"),), name="no_bad")
        db = Database.from_dict({
            "R": [(1, "ok"), (2, "bad"), (3, "fine")],
        })
        q = cq([X, Y], [atom("R", X, Y)], name="all")
        expected = consistent_answers(db, (dc,), q)
        got = consistent_answers_by_rewriting(db, (dc,), q)
        assert got == expected == {(1, "ok"), (3, "fine")}

    def test_repeated_variable_in_dc(self):
        # DC: no reflexive R edges.
        dc = DenialConstraint((atom("R", X, X),), name="no_loop")
        db = Database.from_dict({"R": [(1, 1), (1, 2)]})
        q = cq([X, Y], [atom("R", X, Y)], name="all")
        expected = consistent_answers(db, (dc,), q)
        got = consistent_answers_by_rewriting(db, (dc,), q)
        assert got == expected == {(1, 2)}

    def test_constant_guard_with_join(self):
        # DC: 'admin' may not appear in Grants.
        dc = DenialConstraint(
            (atom("Grants", "admin", X),), name="no_admin"
        )
        db = Database.from_dict({
            "Grants": [("admin", "db1"), ("alice", "db1"), ("bob", "db2")],
        })
        q = cq([X, Y], [atom("Grants", X, Y)], name="grants")
        assert consistent_answers_by_rewriting(db, (dc,), q) == (
            consistent_answers(db, (dc,), q)
        )


class TestTermination:
    def test_cyclic_inds_raise(self):
        db = Database.from_dict({"A": [(1,)], "B": [(2,)]})
        ind1 = InclusionDependency("A", ("a0",), "B", ("a0",), name="ab")
        ind2 = InclusionDependency("B", ("a0",), "A", ("a0",), name="ba")
        q = cq([X], [atom("A", X)], name="q")
        with pytest.raises(RewritingError):
            fo_rewrite(q, (ind1, ind2), db, max_depth=4)

    def test_acyclic_chain_terminates(self):
        db = Database.from_dict({"A": [(1,)], "B": [(1,)], "C": [(1,)]})
        ind1 = InclusionDependency("A", ("a0",), "B", ("a0",), name="ab")
        ind2 = InclusionDependency("B", ("a0",), "C", ("a0",), name="bc")
        q = cq([X], [atom("A", X)], name="q")
        rewritten = fo_rewrite(q, (ind1, ind2), db)
        predicates = {a.predicate for a in rewritten.body.atoms()}
        assert predicates == {"A", "B", "C"}
        assert rewritten.answers(db) == {(1,)}
