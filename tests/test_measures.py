"""Tests for repair-based inconsistency measures."""

import pytest

from repro.measures import (
    InconsistencyReport,
    cardinality_repair_measure,
    g3_measure,
    violation_ratio,
)
from repro.relational import Database, fact
from repro.workloads import (
    abcde_instance,
    employee,
    employee_key_violations,
    rs_instance,
)


class TestMeasures:
    def test_consistent_instance_measures_zero(self):
        scenario = employee()
        db = scenario.db.delete([fact("Employee", "page", "8K")])
        assert cardinality_repair_measure(db, scenario.constraints) == 0.0
        assert g3_measure(db, scenario.constraints) == 0.0
        assert violation_ratio(db, scenario.constraints) == 0.0

    def test_employee_measures(self):
        scenario = employee()
        # One of four tuples must go.
        assert cardinality_repair_measure(
            scenario.db, scenario.constraints
        ) == 0.25
        assert g3_measure(scenario.db, scenario.constraints) == 0.25
        assert violation_ratio(scenario.db, scenario.constraints) == 0.5

    def test_abcde_measures(self):
        scenario = abcde_instance()
        # C-repairs delete 2 of 5 tuples; every tuple is in a conflict.
        assert cardinality_repair_measure(
            scenario.db, scenario.constraints
        ) == 0.4
        assert violation_ratio(scenario.db, scenario.constraints) == 1.0

    def test_g3_equals_cardinality_for_denial(self):
        for scenario in (employee(), rs_instance(), abcde_instance()):
            assert g3_measure(
                scenario.db, scenario.constraints
            ) == pytest.approx(
                cardinality_repair_measure(
                    scenario.db, scenario.constraints
                )
            )

    def test_monotone_in_violations(self):
        low = employee_key_violations(6, 1, 2, seed=3)
        high = employee_key_violations(6, 3, 2, seed=3)
        assert cardinality_repair_measure(
            low.db, low.constraints
        ) < cardinality_repair_measure(high.db, high.constraints)

    def test_empty_db(self):
        from repro.constraints import FunctionalDependency
        from repro.relational import RelationSchema, Schema

        schema = Schema.of(RelationSchema("R", ("a", "b")))
        db = Database.from_dict({"R": []}, schema=schema)
        fd = FunctionalDependency("R", ("a",), ("b",))
        assert cardinality_repair_measure(db, (fd,)) == 0.0
        assert g3_measure(db, (fd,)) == 0.0

    def test_report(self):
        scenario = abcde_instance()
        report = InconsistencyReport.of(scenario.db, scenario.constraints)
        assert report.size == 5
        assert report.repair_distance == 2
        assert report.cardinality_measure == 0.4
        assert len(report.per_constraint) == 3
        text = report.render()
        assert "C-repair distance" in text

    def test_report_with_tgds(self):
        from repro.workloads import supply_articles

        scenario = supply_articles()
        report = InconsistencyReport.of(scenario.db, scenario.constraints)
        assert report.repair_distance == 1
        assert report.violation_ratio != report.violation_ratio  # NaN
