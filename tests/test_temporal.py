"""Tests for temporal CQA under atemporal constraints ([50])."""

import pytest

from repro.constraints import FunctionalDependency
from repro.errors import QueryError
from repro.logic import atom, cq, vars_
from repro.relational import Database, RelationSchema, Schema, fact
from repro.temporal import TemporalCQA, TemporalDatabase

X, Y = vars_("x y")

SCHEMA = Schema.of(
    RelationSchema("Works", ("Name", "Dept"), key=("Name",)),
)
FD = FunctionalDependency("Works", ("Name",), ("Dept",), name="key")


def _tdb():
    return TemporalDatabase.from_timed_facts(SCHEMA, [
        (1, fact("Works", "ann", "hr")),
        (1, fact("Works", "bob", "it")),
        # At time 2, ann is recorded in two departments.
        (2, fact("Works", "ann", "hr")),
        (2, fact("Works", "ann", "it")),
        (2, fact("Works", "bob", "it")),
        (3, fact("Works", "ann", "it")),
    ])


class TestTemporalDatabase:
    def test_times_and_snapshots(self):
        tdb = _tdb()
        assert tdb.times() == (1, 2, 3)
        assert len(tdb.snapshot(2)) == 3
        assert len(tdb.snapshot(99)) == 0
        assert len(tdb) == 6

    def test_schema_mismatch_rejected(self):
        other = Schema.of(RelationSchema("Other", ("a",)))
        with pytest.raises(QueryError):
            TemporalDatabase(SCHEMA, {
                1: Database.from_dict({"Other": [(1,)]}, schema=other),
            })


class TestTemporalCQA:
    def setup_method(self):
        self.cqa = TemporalCQA(_tdb(), (FD,))
        self.q = cq([X], [atom("Works", X, Y)], name="names")
        self.q_dept = cq([X, Y], [atom("Works", X, Y)], name="rows")

    def test_violating_times(self):
        assert self.cqa.violating_times() == (2,)
        assert not self.cqa.is_consistent()

    def test_snapshot_repairs(self):
        assert len(self.cqa.snapshot_repairs(1)) == 1
        assert len(self.cqa.snapshot_repairs(2)) == 2
        assert self.cqa.repair_count() == 2

    def test_consistent_answers_at(self):
        at2 = self.cqa.consistent_answers_at(2, self.q_dept)
        assert at2 == {("bob", "it")}
        names2 = self.cqa.consistent_answers_at(2, self.q)
        assert names2 == {("ann",), ("bob",)}

    def test_always_and_sometime(self):
        always = self.cqa.always_answers(self.q)
        assert always == {("ann",)}  # bob is absent at time 3
        sometime = self.cqa.sometime_answers(self.q)
        assert sometime == {("ann",), ("bob",)}
        assert always <= sometime

    def test_answer_timeline(self):
        timeline = self.cqa.answer_timeline(self.q_dept)
        assert timeline[("ann", "hr")] == (1,)
        assert timeline[("bob", "it")] == (1, 2)
        assert timeline[("ann", "it")] == (3,)

    def test_consistent_temporal_db(self):
        tdb = TemporalDatabase.from_timed_facts(SCHEMA, [
            (1, fact("Works", "ann", "hr")),
        ])
        cqa = TemporalCQA(tdb, (FD,))
        assert cqa.is_consistent()
        assert cqa.repair_count() == 1
        assert cqa.always_answers(self.q) == {("ann",)}
