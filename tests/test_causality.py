"""Tests for causality: Examples 7.1-7.4 and the repair connection."""

import pytest

from repro.causality import (
    CausalityProgram,
    actual_causes,
    actual_causes_direct,
    actual_causes_under_ics,
    attribute_causes,
    attribute_responsibility,
    causes_via_asp,
    counterfactual_causes,
    most_responsible_causes,
    query_as_denial,
    responsibility,
    responsibility_under_ics,
)
from repro.errors import QueryError
from repro.logic import atom, cq, vars_
from repro.relational import fact
from repro.workloads import dep_course, random_rs_instance, rs_instance

X, Y = vars_("x y")


class TestExample71:
    """Example 7.1: causes and responsibilities for Q on the R/S instance."""

    def setup_method(self):
        scenario = rs_instance()
        self.db = scenario.db
        self.query = scenario.queries["Q"]

    def test_counterfactual_cause(self):
        cf = counterfactual_causes(self.db, self.query)
        assert [c.fact for c in cf] == [fact("S", "a3")]
        assert cf[0].responsibility == 1.0

    def test_actual_causes_and_responsibilities(self):
        causes = {
            c.fact: c.responsibility
            for c in actual_causes(self.db, self.query)
        }
        assert causes == {
            fact("S", "a3"): 1.0,
            fact("R", "a4", "a3"): 0.5,
            fact("R", "a3", "a3"): 0.5,
            fact("S", "a4"): 0.5,
        }

    def test_contingency_of_r43(self):
        causes = actual_causes(self.db, self.query)
        r43 = next(c for c in causes if c.fact == fact("R", "a4", "a3"))
        assert frozenset({fact("R", "a3", "a3")}) in r43.contingencies

    def test_responsibility_function(self):
        assert responsibility(self.db, self.query, fact("S", "a3")) == 1.0
        assert responsibility(self.db, self.query, fact("S", "a2")) == 0.0

    def test_most_responsible(self):
        mrac = most_responsible_causes(self.db, self.query)
        assert [c.fact for c in mrac] == [fact("S", "a3")]

    def test_direct_agrees_with_repair_connection(self):
        via_repairs = {
            c.fact: c.responsibility
            for c in actual_causes(self.db, self.query)
        }
        direct = {
            c.fact: c.responsibility
            for c in actual_causes_direct(self.db, self.query)
        }
        assert direct == via_repairs

    def test_false_query_no_causes(self):
        q = cq([], [atom("S", "zzz")])
        assert actual_causes(self.db, q) == []

    def test_non_boolean_requires_answer(self):
        q = cq([X], [atom("S", X)])
        with pytest.raises(QueryError):
            actual_causes(self.db, q)
        with pytest.raises(QueryError):
            query_as_denial(q)


class TestExample72:
    """Example 7.2: the same causes via the extended repair program."""

    def setup_method(self):
        scenario = rs_instance()
        self.db = scenario.db
        self.query = scenario.queries["Q"]

    def test_cause_tids_brave(self):
        program = CausalityProgram(self.db, self.query)
        # t6=S(a3), t1=R(a4,a3), t3=R(a3,a3), t4=S(a4).
        assert program.cause_tids() == {"t1", "t3", "t4", "t6"}

    def test_caucon_pairs_from_d2(self):
        program = CausalityProgram(self.db, self.query)
        pairs = program.contingency_pairs()
        # From model M2 (repair D2): CauCon(ι1, ι3) and CauCon(ι3, ι1).
        assert ("t1", "t3") in pairs
        assert ("t3", "t1") in pairs

    def test_responsibilities_via_count(self):
        rho = causes_via_asp(self.db, self.query)
        assert rho == {"t1": 0.5, "t3": 0.5, "t4": 0.5, "t6": 1.0}

    def test_mrac_via_weak_constraints(self):
        program = CausalityProgram(
            self.db, self.query, include_weak_constraints=True
        )
        assert program.cause_tids(optimal_only=True) == {"t6"}

    def test_agrees_with_repair_based(self):
        rho_asp = causes_via_asp(self.db, self.query)
        rho_direct = {
            self.db.tid_of(c.fact): c.responsibility
            for c in actual_causes(self.db, self.query)
        }
        assert rho_asp == rho_direct


class TestExample73:
    """Example 7.3: attribute-level causes."""

    def setup_method(self):
        scenario = rs_instance()
        self.db = scenario.db
        self.query = scenario.queries["Q"]

    def test_t6_1_counterfactual(self):
        causes = attribute_causes(self.db, self.query)
        by_label = {c.label(): c for c in causes}
        assert by_label["t6[1]"].is_counterfactual
        assert by_label["t6[1]"].responsibility == 1.0

    def test_t1_2_actual_with_t3_2_contingency(self):
        causes = attribute_causes(self.db, self.query)
        by_label = {c.label(): c for c in causes}
        c = by_label["t1[2]"]
        assert c.responsibility == 0.5
        assert frozenset({("t3", 1)}) in c.contingencies
        # ...and the other way around, as the paper says.
        c2 = by_label["t3[2]"]
        assert frozenset({("t1", 1)}) in c2.contingencies

    def test_responsibility_lookup(self):
        assert attribute_responsibility(
            self.db, self.query, ("t6", 0)
        ) == 1.0
        assert attribute_responsibility(
            self.db, self.query, ("t2", 0)
        ) == 0.0

    def test_false_query_no_causes(self):
        q = cq([], [atom("S", "zzz")])
        assert attribute_causes(self.db, q) == []


class TestExample74:
    """Example 7.4: causality under an inclusion dependency."""

    def setup_method(self):
        scenario = dep_course()
        self.db = scenario.db
        self.psi = scenario.constraints
        self.Q = scenario.queries["Q"]
        self.Q1 = scenario.queries["Q1"]
        self.Q2 = scenario.queries["Q2"]
        self.dep_john = fact("Dep", "Computing", "John")       # ι1
        self.com08 = fact("Course", "COM08", "John", "Computing")   # ι4
        self.com01 = fact("Course", "COM01", "John", "Computing")   # ι8

    def test_causes_without_ics(self):
        causes = {
            c.fact: c.responsibility
            for c in actual_causes(self.db, self.Q, answer=("John",))
        }
        assert causes == {
            self.dep_john: 1.0,
            self.com08: 0.5,
            self.com01: 0.5,
        }

    def test_query_a_under_psi(self):
        causes = {
            c.fact: c.responsibility
            for c in actual_causes_under_ics(
                self.db, self.psi, self.Q, answer=("John",)
            )
        }
        # ι4 and ι8 are no longer causes; ι1 stays counterfactual.
        assert causes == {self.dep_john: 1.0}

    def test_query_b_under_psi_same_as_a(self):
        causes_a = {
            c.fact: c.responsibility
            for c in actual_causes_under_ics(
                self.db, self.psi, self.Q, answer=("John",)
            )
        }
        causes_b = {
            c.fact: c.responsibility
            for c in actual_causes_under_ics(
                self.db, self.psi, self.Q1, answer=("John",)
            )
        }
        assert causes_a == causes_b

    def test_query_c_without_ics(self):
        causes = {
            c.fact: c.responsibility
            for c in actual_causes(self.db, self.Q2, answer=("John",))
        }
        assert causes == {self.com08: 0.5, self.com01: 0.5}

    def test_query_c_under_psi_responsibility_drops(self):
        causes = {
            c.fact: c.responsibility
            for c in actual_causes_under_ics(
                self.db, self.psi, self.Q2, answer=("John",)
            )
        }
        assert causes[self.com08] == pytest.approx(1 / 3)
        assert causes[self.com01] == pytest.approx(1 / 3)
        assert self.dep_john not in causes

    def test_contingency_includes_dep_tuple(self):
        causes = actual_causes_under_ics(
            self.db, self.psi, self.Q2, answer=("John",)
        )
        c4 = next(c for c in causes if c.fact == self.com08)
        assert frozenset({self.com01, self.dep_john}) in c4.contingencies

    def test_inconsistent_instance_rejected(self):
        bad = self.db.delete([self.com08, self.com01])
        with pytest.raises(QueryError):
            actual_causes_under_ics(
                bad, self.psi, self.Q2, answer=("John",)
            )

    def test_responsibility_under_ics_lookup(self):
        assert responsibility_under_ics(
            self.db, self.psi, self.Q, self.dep_john, answer=("John",)
        ) == 1.0
        assert responsibility_under_ics(
            self.db, self.psi, self.Q, self.com08, answer=("John",)
        ) == 0.0


class TestCausalityProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_direct_vs_repair_connection_random(self, seed):
        scenario = random_rs_instance(4, 3, 3, seed=seed)
        query = cq(
            [], [atom("S", X), atom("R", X, Y), atom("S", Y)], name="Q"
        )
        via_repairs = {
            c.fact: c.responsibility
            for c in actual_causes(scenario.db, query)
        }
        direct = {
            c.fact: c.responsibility
            for c in actual_causes_direct(scenario.db, query)
        }
        assert via_repairs == direct

    @pytest.mark.parametrize("seed", range(4))
    def test_asp_vs_repair_connection_random(self, seed):
        scenario = random_rs_instance(5, 4, 4, seed=seed)
        query = cq(
            [], [atom("S", X), atom("R", X, Y), atom("S", Y)], name="Q"
        )
        if not query.holds(scenario.db):
            pytest.skip("query false on this instance")
        rho_asp = causes_via_asp(scenario.db, query)
        rho_repairs = {
            scenario.db.tid_of(c.fact): c.responsibility
            for c in actual_causes(scenario.db, query)
        }
        assert rho_asp == rho_repairs

    def test_responsibility_bounds(self):
        scenario = rs_instance()
        for c in actual_causes(scenario.db, scenario.queries["Q"]):
            assert 0 < c.responsibility <= 1
