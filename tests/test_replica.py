"""Replication & failover: WAL shipping, staleness, fenced promotion.

Three layers, mirroring the production split:

* the store's replication API (epochs, fencing, the shipped tail,
  idempotent apply, snapshot bootstrap) — pure filesystem, no sockets;
* the service handlers (`handle_replica_pull` / `promote` / `fence`,
  the role gate on mutations, the ``min_lsn``/``as_of_lsn`` staleness
  contract) — plain functions returning ``(status, body, headers)``;
* end to end — a real primary server on a socket, a real
  :class:`ReplicaClient` pulling over HTTP, a promotion, and the
  split-brain guard fencing the ex-primary.
"""

import threading
import time

import pytest

from repro.serve import (
    CQAService,
    ReplicaClient,
    ReplicaConfig,
    ServerConfig,
)
from repro.serve.store import (
    FencedError,
    StoreCorruptionError,
    StorePolicy,
    TenantStore,
)

from .test_serve import EMPLOYEE_SPEC, _ServerHarness

#: A consistent spec (no violations) so mutate-path tests stay cheap.
AUDIT_SPEC = {
    "relations": {
        "Audit": {
            "columns": ["K", "V"],
            "key": ["K"],
            "rows": [["a", "1"]],
        }
    },
    "constraints": {"fd": ["Audit: K -> V"]},
}


def _store(tmp_path, name="s", **policy):
    path = tmp_path / name
    path.mkdir(exist_ok=True)
    return TenantStore(str(path), StorePolicy(**policy))


def _recovered_service(tmp_path, name="p", **policy):
    svc = CQAService(store=_store(tmp_path, name, **policy))
    svc.recover()
    return svc


def _follower_service(tmp_path, name="f", upstream="http://127.0.0.1:1"):
    """A follower with its role set but no pull thread running."""
    svc = _recovered_service(tmp_path, name)
    svc._role = "follower"
    svc._primary_url = upstream
    return svc


# ----------------------------------------------------------------------
# Store: epochs, fencing, the shipped tail
# ----------------------------------------------------------------------


class TestStoreEpochs:
    def test_records_carry_the_epoch_and_recovery_restores_it(
        self, tmp_path
    ):
        st = _store(tmp_path)
        st.recover()
        assert st.epoch == 0
        st.append_put_db("d", AUDIT_SPEC)
        assert st.bump_epoch() == 1
        st.append_mutate("d", [["Audit", "b", "2"]], [])
        records = st.records_since(0)
        assert [r["epoch"] for r in records] == [0, 1, 1]
        st.close()
        st2 = TenantStore(str(tmp_path / "s"), StorePolicy())
        recovered = st2.recover()
        assert recovered.epoch == 1 and st2.epoch == 1
        # The replayed tail is shippable after a restart too.
        assert [r["lsn"] for r in st2.records_since(0)] == [1, 2, 3]
        st2.close()

    def test_snapshot_preserves_the_epoch(self, tmp_path):
        st = _store(tmp_path, compact_every=2)
        st.recover()
        st.bump_epoch()
        st.append_put_db("d", AUDIT_SPEC)
        st.append_mutate("d", [["Audit", "b", "2"]], [])  # compacts
        st.close()
        st2 = TenantStore(str(tmp_path / "s"), StorePolicy())
        assert st2.recover().epoch == 1
        st2.close()

    def test_fence_rejects_appends_durably(self, tmp_path):
        st = _store(tmp_path)
        st.recover()
        st.append_put_db("d", AUDIT_SPEC)
        assert st.fence(3) is True
        assert st.fenced == 3
        with pytest.raises(FencedError):
            st.append_mutate("d", [["Audit", "b", "2"]], [])
        # Fencing below or at our own epoch is refused: the node with
        # the highest durable epoch must never fence itself.
        st2 = _store(tmp_path, "other")
        st2.recover()
        st2.bump_epoch()
        st2.bump_epoch()
        assert st2.fence(1) is False and st2.fenced is None
        st.close()
        st2.close()

    def test_bump_epoch_refused_while_fenced(self, tmp_path):
        st = _store(tmp_path)
        st.recover()
        st.fence(5)
        with pytest.raises(FencedError):
            st.bump_epoch()
        st.close()

    def test_fence_survives_restart(self, tmp_path):
        """The latch is durable: a kill -9'd fenced ex-primary must
        not reboot back into acking at its old epoch."""
        st = _store(tmp_path)
        st.recover()
        st.append_put_db("d", AUDIT_SPEC)
        assert st.fence(3) is True
        st.close()
        st2 = TenantStore(str(tmp_path / "s"), StorePolicy())
        recovered = st2.recover()
        assert recovered.fenced_by == 3 and st2.fenced == 3
        with pytest.raises(FencedError):
            st2.append_mutate("d", [["Audit", "b", "2"]], [])
        with pytest.raises(FencedError):
            st2.bump_epoch()
        st2.close()

    def test_fence_clears_on_adopting_the_superseding_lineage(
        self, tmp_path
    ):
        """Rejoin path: once the directory durably holds records at
        the fencing epoch, the latch is spent — in memory and across
        a restart."""
        st = _store(tmp_path)
        st.recover()
        st.append_put_db("d", AUDIT_SPEC)  # lsn 1, epoch 0
        st.fence(2)
        with pytest.raises(FencedError):
            st.install_state({}, 9, epoch=1)  # still a stale lineage
        assert st.apply_replicated(
            {"op": "epoch", "lsn": 2, "epoch": 2}
        )
        assert st.fenced is None
        st.append_mutate("d", [["Audit", "b", "2"]], [])
        st.close()
        st2 = TenantStore(str(tmp_path / "s"), StorePolicy())
        recovered = st2.recover()
        assert recovered.fenced_by is None and st2.fenced is None
        assert st2.epoch == 2
        st2.close()

    def test_records_since_boundaries(self, tmp_path):
        st = _store(tmp_path)
        st.recover()
        st.append_put_db("d", AUDIT_SPEC)
        st.append_mutate("d", [["Audit", "b", "2"]], [])
        assert st.records_since(2) == []
        assert [r["lsn"] for r in st.records_since(1)] == [2]
        # The tail is a copy, not a window into store internals.
        st.records_since(0)[0]["op"] = "clobbered"
        assert st.records_since(0)[0]["op"] == "put_db"
        st.close()

    def test_records_since_returns_none_past_compaction(self, tmp_path):
        st = _store(tmp_path, compact_every=2)
        st.recover()
        st.append_put_db("d", AUDIT_SPEC)
        st.append_mutate("d", [["Audit", "b", "2"]], [])  # compacts
        # The pre-compaction range is gone: bootstrap required.
        assert st.records_since(0) is None
        assert st.records_since(st.last_lsn) == []
        st.close()

    def test_apply_replicated_idempotent_gapless_and_fenced(
        self, tmp_path
    ):
        primary = _store(tmp_path, "p")
        primary.recover()
        primary.append_put_db("d", AUDIT_SPEC)
        primary.append_mutate("d", [["Audit", "b", "2"]], [])
        shipped = primary.records_since(0)

        follower = _store(tmp_path, "f")
        follower.recover()
        assert follower.apply_replicated(shipped[0]) is True
        # Duplicate delivery (a retried pull) is skipped, not an error.
        assert follower.apply_replicated(shipped[0]) is False
        # A gap is corruption, never silently reordered.
        with pytest.raises(StoreCorruptionError):
            follower.apply_replicated(dict(shipped[1], lsn=99))
        assert follower.apply_replicated(shipped[1]) is True
        assert follower.last_lsn == primary.last_lsn
        assert (
            follower.current_state_digest()
            == primary.current_state_digest()
        )
        # A lower-epoch record after the follower advanced is a stale
        # writer: refused.
        follower.fence(7)
        with pytest.raises(FencedError):
            follower.apply_replicated(
                dict(shipped[1], lsn=3, epoch=0)
            )
        primary.close()
        follower.close()

    def test_applied_records_are_durable_on_the_follower(self, tmp_path):
        primary = _store(tmp_path, "p")
        primary.recover()
        primary.append_put_db("d", AUDIT_SPEC)
        shipped = primary.records_since(0)
        follower = _store(tmp_path, "f")
        follower.recover()
        for record in shipped:
            follower.apply_replicated(record)
        follower.close()
        again = TenantStore(str(tmp_path / "f"), StorePolicy())
        recovered = again.recover()
        assert recovered.last_lsn == primary.last_lsn
        assert recovered.state_digest == primary.current_state_digest()
        primary.close()
        again.close()

    def test_state_transfer_bootstraps_a_blank_follower(self, tmp_path):
        primary = _store(tmp_path, "p")
        primary.recover()
        primary.bump_epoch()
        primary.append_put_db("d", AUDIT_SPEC)
        primary.append_mutate("d", [["Audit", "b", "2"]], [])
        transfer = primary.state_transfer()
        assert transfer["lsn"] == primary.last_lsn
        assert transfer["epoch"] == 1

        follower = _store(tmp_path, "f")
        follower.recover()
        follower.install_state(
            transfer["databases"], transfer["lsn"], transfer["epoch"]
        )
        assert follower.last_lsn == primary.last_lsn
        assert follower.epoch == 1
        assert (
            follower.current_state_digest()
            == primary.current_state_digest()
        )
        # The bootstrap is itself durable: a crash right after it
        # recovers to the installed state, not to blank.
        follower.close()
        again = TenantStore(str(tmp_path / "f"), StorePolicy())
        recovered = again.recover()
        assert recovered.last_lsn == primary.last_lsn
        assert recovered.epoch == 1
        primary.close()
        again.close()

    def test_wait_for_lsn_blocks_until_the_append(self, tmp_path):
        st = _store(tmp_path)
        st.recover()
        assert st.wait_for_lsn(1, timeout_s=0.05) is False
        done = []

        def appender():
            time.sleep(0.05)
            st.append_put_db("d", AUDIT_SPEC)
            done.append(True)

        thread = threading.Thread(target=appender)
        thread.start()
        assert st.wait_for_lsn(1, timeout_s=5.0) is True
        thread.join()
        st.close()


# ----------------------------------------------------------------------
# Service handlers: roles, the pull plane, staleness
# ----------------------------------------------------------------------


class TestRoleGate:
    def test_follower_rejects_mutations_with_the_primary_url(
        self, tmp_path
    ):
        primary = _recovered_service(tmp_path, "p")
        primary.register_db("d", AUDIT_SPEC)
        follower = _follower_service(
            tmp_path, upstream="http://primary:1234"
        )
        status, body, _ = follower.register_db("d", AUDIT_SPEC)
        assert status == 403
        assert body["error"] == "not-primary"
        assert body["primary_url"] == "http://primary:1234"
        status, body, _ = follower.handle_mutate(
            "d", {"insert": [["Audit", "b", "2"]]}
        )
        assert status == 403 and body["error"] == "not-primary"
        primary.close()
        follower.close()

    def test_reads_are_served_on_a_fresh_follower(self, tmp_path):
        primary = _recovered_service(tmp_path, "p")
        primary.register_db("emp", EMPLOYEE_SPEC)
        follower = _follower_service(tmp_path)
        for record in primary.store.records_since(0):
            follower.apply_replicated(record)
        # A follower serves only while its feed provably fresh: give
        # it a client whose last pull just happened.
        client = ReplicaClient(
            follower, ReplicaConfig(upstream="http://primary:1")
        )
        client.last_pull_at = time.monotonic()
        follower._replica = client
        status, body, headers = follower.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 200
        assert body["answers"] == [["page"], ["smith"], ["stowe"]]
        # Follower 200s carry the staleness stamp alongside the LSN.
        assert "stale_s" in body and "X-Stale-S" in headers
        follower._replica = None
        primary.close()
        follower.close()


class TestPullPlane:
    def test_pull_ships_records_and_tracks_the_follower(self, tmp_path):
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("d", AUDIT_SPEC)
        svc.handle_mutate("d", {"insert": [["Audit", "b", "2"]]})
        status, body, _ = svc.handle_replica_pull(
            {"from_lsn": 0, "epoch": 0, "follower": "f1"}
        )
        assert status == 200
        assert [r["lsn"] for r in body["records"]] == [1, 2]
        assert body["last_lsn"] == 2 and body["epoch"] == 0
        followers = svc.replication()["followers"]
        assert followers["f1"]["acked_lsn"] == 0
        assert followers["f1"]["lag_records"] == 2
        # The next pull acks the shipped prefix: lag drops to zero.
        status, body, _ = svc.handle_replica_pull(
            {"from_lsn": 2, "epoch": 0, "follower": "f1"}
        )
        assert status == 200 and body["records"] == []
        assert svc.replication()["followers"]["f1"]["lag_records"] == 0
        svc.close()

    def test_pull_past_compaction_answers_a_bootstrap(self, tmp_path):
        svc = CQAService(
            store=_store(tmp_path, "p", compact_every=2)
        )
        svc.recover()
        svc.register_db("d", AUDIT_SPEC)
        svc.handle_mutate("d", {"insert": [["Audit", "b", "2"]]})
        status, body, _ = svc.handle_replica_pull(
            {"from_lsn": 0, "epoch": 0, "follower": "f1"}
        )
        assert status == 200 and "bootstrap" in body
        assert body["bootstrap"]["lsn"] == svc.store.last_lsn
        assert "d" in body["bootstrap"]["databases"]
        svc.close()

    def test_pull_validation(self, tmp_path):
        svc = _recovered_service(tmp_path, "p")
        assert svc.handle_replica_pull({"from_lsn": -1})[0] == 400
        assert svc.handle_replica_pull({"from_lsn": "x"})[0] == 400
        assert (
            svc.handle_replica_pull(
                {"from_lsn": 0, "wait_s": "soon"}
            )[0]
            == 400
        )
        no_store = CQAService()
        assert no_store.handle_replica_pull({"from_lsn": 0})[0] == 400
        svc.close()

    def test_higher_epoch_pull_self_fences_the_primary(self, tmp_path):
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("d", AUDIT_SPEC)
        status, body, _ = svc.handle_replica_pull(
            {"from_lsn": 0, "epoch": 5, "follower": "newer"}
        )
        assert status == 409 and body["error"] == "fenced"
        assert svc.role == "fenced"
        # The demotion is effective: writes refuse from here on.
        status, body, _ = svc.handle_mutate(
            "d", {"insert": [["Audit", "b", "2"]]}
        )
        assert status == 403 and body["error"] == "not-primary"
        svc.close()

    def test_pull_against_a_follower_redirects(self, tmp_path):
        follower = _follower_service(
            tmp_path, upstream="http://primary:1"
        )
        status, body, _ = follower.handle_replica_pull(
            {"from_lsn": 0, "epoch": 0}
        )
        assert status == 403 and body["error"] == "not-primary"
        assert body["primary_url"] == "http://primary:1"
        follower.close()

    def test_long_poll_returns_early_on_an_append(self, tmp_path):
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("d", AUDIT_SPEC)
        result = {}

        def puller():
            result["handled"] = svc.handle_replica_pull(
                {"from_lsn": 1, "epoch": 0, "wait_s": 5.0}
            )

        thread = threading.Thread(target=puller)
        started = time.monotonic()
        thread.start()
        time.sleep(0.05)
        svc.handle_mutate("d", {"insert": [["Audit", "b", "2"]]})
        thread.join(timeout=10.0)
        assert time.monotonic() - started < 5.0
        status, body, _ = result["handled"]
        assert status == 200
        assert [r["lsn"] for r in body["records"]] == [2]
        svc.close()


class TestPromotionAndFencing:
    def test_promote_bumps_the_epoch_and_takes_writes(self, tmp_path):
        primary = _recovered_service(tmp_path, "p")
        primary.register_db("d", AUDIT_SPEC)
        follower = _follower_service(tmp_path)
        for record in primary.store.records_since(0):
            follower.apply_replicated(record)
        status, body, _ = follower.handle_replica_promote()
        assert status == 200
        assert body["role"] == "primary" and body["epoch"] == 1
        assert body["promotion_ms"] >= 0.0
        assert follower.role == "primary" and follower.phase == "ready"
        # Writes flow, stamped with the new epoch.
        status, body, _ = follower.handle_mutate(
            "d", {"insert": [["Audit", "b", "2"]]}
        )
        assert status == 200
        assert follower.store.records_since(1)[-1]["epoch"] == 1
        # Promotion is idempotent.
        status, body, _ = follower.handle_replica_promote()
        assert status == 200 and body.get("already_primary")
        primary.close()
        follower.close()

    def test_fence_demotes_and_refuses_stale_epochs(self, tmp_path):
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("d", AUDIT_SPEC)
        # Fencing with an epoch we already hold is refused: you cannot
        # fence the highest-epoch node.
        svc.store.bump_epoch()
        status, body, _ = svc.handle_replica_fence({"epoch": 1})
        assert status == 409 and body["error"] == "stale-epoch"
        assert svc.role == "primary"
        status, body, _ = svc.handle_replica_fence({"epoch": 2})
        assert status == 200 and body["role"] == "fenced"
        assert svc.role == "fenced"
        status, body, _ = svc.handle_mutate(
            "d", {"insert": [["Audit", "b", "2"]]}
        )
        assert status == 403
        # A fenced node refuses promotion: its claim would split-brain.
        status, body, _ = svc.handle_replica_promote()
        assert status == 409 and body["error"] == "fenced"
        assert svc.handle_replica_fence({"epoch": 0})[0] == 400
        svc.close()

    def test_promoted_epoch_fences_the_restarted_ex_primary(
        self, tmp_path
    ):
        """The split-brain core: after promotion, the ex-primary's
        store refuses the new-epoch stream's past — and a pull carrying
        the new epoch demotes it on contact."""
        old = _recovered_service(tmp_path, "old")
        old.register_db("d", AUDIT_SPEC)
        new = _follower_service(tmp_path, "new")
        for record in old.store.records_since(0):
            new.apply_replicated(record)
        new.handle_replica_promote()
        status, _, _ = old.handle_replica_pull(
            {"from_lsn": new.store.last_lsn, "epoch": new.store.epoch}
        )
        assert status == 409
        assert old.role == "fenced"
        with pytest.raises(FencedError):
            old.store.append_mutate("d", [["Audit", "z", "9"]], [])
        old.close()
        new.close()

    def test_fenced_ex_primary_recovers_fenced_after_restart(
        self, tmp_path
    ):
        """The durable latch at the service layer: restart over a
        fenced directory yields role 'fenced' — mutations 403 and
        reads shed — never a primary acking at its old epoch."""
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("d", AUDIT_SPEC)
        status, _, _ = svc.handle_replica_fence({"epoch": 2})
        assert status == 200
        svc.close()
        svc2 = CQAService(store=_store(tmp_path, "p"))
        svc2.recover()
        assert svc2.role == "fenced"
        status, body, _ = svc2.handle_mutate(
            "d", {"insert": [["Audit", "b", "2"]]}
        )
        assert status == 403 and body["error"] == "not-primary"
        status, body, _ = svc2.handle_cqa(
            {"db": "d", "query": "Q(K) :- Audit(K, V)"}
        )
        assert status == 503 and body["error"] == "stale-read"
        assert body["reason"] == "fenced"
        # With no pull feed, staleness is unknowable — never 0.0.
        assert "stale_s" not in body
        svc2.close()


class TestStalenessContract:
    def test_reads_stamp_as_of_lsn(self, tmp_path):
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("emp", EMPLOYEE_SPEC)
        status, body, headers = svc.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 200
        assert body["as_of_lsn"] == 1
        assert headers["X-As-Of-LSN"] == "1"
        svc.close()

    def test_satisfied_min_lsn_is_served(self, tmp_path):
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("emp", EMPLOYEE_SPEC)
        status, body, _ = svc.handle_cqa(
            {
                "db": "emp",
                "query": "Q(X) :- Employee(X, Y)",
                "min_lsn": 1,
            }
        )
        assert status == 200 and body["as_of_lsn"] >= 1
        svc.close()

    def test_unsatisfiable_min_lsn_sheds_with_the_primary_url(
        self, tmp_path
    ):
        follower = _follower_service(
            tmp_path, upstream="http://primary:1"
        )
        # A fresh feed so the follower is not 'replication-stalled'.
        client = ReplicaClient(
            follower, ReplicaConfig(upstream="http://primary:1")
        )
        client.last_pull_at = time.monotonic()
        follower._replica = client
        status, body, headers = follower.handle_cqa(
            {
                "db": "emp",
                "query": "Q(X) :- Employee(X, Y)",
                "min_lsn": 50,
                "timeout_s": 0.05,
            }
        )
        assert status == 503
        assert body["error"] == "stale-read"
        assert body["reason"] == "behind-min-lsn"
        assert body["min_lsn"] == 50 and body["as_of_lsn"] == 0
        assert body["primary_url"] == "http://primary:1"
        assert "Retry-After" in headers
        follower._replica = None
        follower.close()

    def test_silent_feed_sheds_replication_stalled(self, tmp_path):
        follower = _follower_service(tmp_path)
        primary = _recovered_service(tmp_path, "p")
        primary.register_db("emp", EMPLOYEE_SPEC)
        for record in primary.store.records_since(0):
            follower.apply_replicated(record)
        # No replica client has ever pulled: freshness is unprovable,
        # so even a lag-free read must shed rather than guess — the
        # *lag-bounded* replica contract applies to every read.
        client = ReplicaClient(
            follower, ReplicaConfig(upstream="http://primary:1")
        )
        follower._replica = client
        status, body, _ = follower.handle_cqa(
            {
                "db": "emp",
                "query": "Q(X) :- Employee(X, Y)",
                "min_lsn": 1,
            }
        )
        assert status == 503
        assert body["reason"] == "replication-stalled"
        status, body, _ = follower.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 503
        assert body["reason"] == "replication-stalled"
        follower._replica = None
        follower.close()
        primary.close()

    def test_fenced_node_sheds_reads(self, tmp_path):
        """Fencing stops the pull client, so freshness is unknowable:
        every read sheds (typed 'fenced') instead of aging forever
        behind a fabricated ``stale_s: 0.0``."""
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("emp", EMPLOYEE_SPEC)
        assert svc.handle_replica_fence({"epoch": 7})[0] == 200
        status, body, _ = svc.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 503
        assert body["error"] == "stale-read"
        assert body["reason"] == "fenced"
        assert "stale_s" not in body
        svc.close()

    def test_min_lsn_validation(self, tmp_path):
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("emp", EMPLOYEE_SPEC)
        status, body, _ = svc.handle_cqa(
            {
                "db": "emp",
                "query": "Q(X) :- Employee(X, Y)",
                "min_lsn": -2,
            }
        )
        assert status == 400
        svc.close()


class TestDrain:
    def test_draining_healthz_503s_but_requests_still_serve(
        self, tmp_path
    ):
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("emp", EMPLOYEE_SPEC)
        svc.begin_drain()
        svc.begin_drain()  # idempotent
        status, body, _ = svc.health()
        assert status == 503
        assert body["status"] == "draining"
        assert body["phase"] == "draining"
        # In-flight and straggler traffic completes during the window.
        status, body, _ = svc.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 200
        svc.close()


# ----------------------------------------------------------------------
# End to end: sockets, a live pull loop, a real promotion
# ----------------------------------------------------------------------


def _wait_until(predicate, timeout_s=30.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestPullLoopResilience:
    def test_pull_loop_survives_unexpected_errors(self, tmp_path):
        """Any exception in a pull — not just the typed store errors —
        must leave the daemon thread alive and retrying, with the
        failure recorded, not kill replication silently."""
        follower = _follower_service(tmp_path)
        client = ReplicaClient(
            follower,
            ReplicaConfig(
                upstream="http://127.0.0.1:1",
                backoff_s=0.01,
                poll_interval_s=0.01,
            ),
        )
        calls = []

        def boom(wait_s=None):
            calls.append(1)
            raise ValueError("malformed pull body")

        client.pull_once = boom
        before = client.pull_errors
        client.start()
        assert _wait_until(lambda: len(calls) >= 3)
        assert client.running
        assert "ValueError" in (client.last_error or "")
        assert client.pull_errors > before
        client.stop()
        follower.close()


class TestEndToEndReplication:
    def test_follower_catches_up_promotes_and_fences_upstream(
        self, tmp_path
    ):
        primary = _recovered_service(tmp_path, "p")
        primary.register_db("emp", EMPLOYEE_SPEC)
        primary.register_db("d", AUDIT_SPEC)
        harness = _ServerHarness(primary, ServerConfig(port=0))
        with harness as server:
            follower = CQAService(store=_store(tmp_path, "f"))
            follower.recover()
            follower.start_follower(ReplicaConfig(
                upstream=f"http://127.0.0.1:{server.port}",
                follower_id="f1",
                wait_s=0.2,
                poll_interval_s=0.02,
            ))
            assert follower.phase == "catching-up"
            assert _wait_until(lambda: follower.phase == "ready")
            # Read-your-writes across the pair: mutate the primary,
            # then read on the follower with min_lsn = the acked lsn.
            status, body, _ = primary.handle_mutate(
                "d", {"insert": [["Audit", "b", "2"]]}
            )
            assert status == 200
            acked = body["lsn"]
            status, body, _ = follower.handle_cqa(
                {
                    "db": "d",
                    "query": "Q(K) :- Audit(K, V)",
                    "min_lsn": acked,
                    "timeout_s": 10.0,
                }
            )
            assert status == 200, body
            assert body["as_of_lsn"] >= acked
            assert ["b"] in body["answers"]
            # Primary-side lag bookkeeping saw the follower.
            assert "f1" in (primary.replication().get("followers") or {})
            # Promote the follower; its pull loop stops and the epoch
            # advances durably.
            status, body, _ = follower.handle_replica_promote()
            assert status == 200 and body["epoch"] == 1
            assert follower.role == "primary"
            assert follower._replica is None
            # The ex-primary fences on first contact with the new
            # epoch, after which its mutations refuse.
            status, _ = harness.request(
                "POST",
                "/v1/replica/pull",
                {"from_lsn": follower.store.last_lsn, "epoch": 1},
            )
            assert status == 409
            status, body = harness.request(
                "POST",
                "/v1/db/d/mutate",
                {"insert": [["Audit", "z", "9"]]},
            )
            assert status == 403 and body["error"] == "not-primary"
            follower.close()
        primary.close()

    def test_http_replica_plane_and_status(self, tmp_path):
        svc = _recovered_service(tmp_path, "p")
        svc.register_db("d", AUDIT_SPEC)
        harness = _ServerHarness(svc, ServerConfig(port=0))
        with harness:
            status, body = harness.request("GET", "/v1/replica/status")
            assert status == 200
            assert body["role"] == "primary" and body["epoch"] == 0
            status, body = harness.request(
                "POST", "/v1/replica/pull", {"from_lsn": 0, "epoch": 0}
            )
            assert status == 200 and len(body["records"]) == 1
            status, body = harness.request(
                "POST", "/v1/replica/fence", {"epoch": 4}
            )
            assert status == 200 and body["role"] == "fenced"
            status, body = harness.request("GET", "/status")
            assert body["role"] == "fenced"
            assert body["replication"]["fenced_by"] == 4
            status, _ = harness.request("POST", "/v1/replica/nope", {})
            assert status == 405
        svc.close()
