"""Tests for causality over unions of conjunctive queries (Section 7)."""

import pytest

from repro.causality import actual_causes, actual_causes_direct
from repro.errors import QueryError
from repro.logic import UnionQuery, atom, boolean_query, cq, vars_
from repro.relational import Database, fact
from repro.workloads import random_rs_instance

X, Y = vars_("x y")


@pytest.fixture
def db():
    return Database.from_dict({
        "P": [(1,), (2,)],
        "Q": [(2,), (3,)],
    })


class TestUCQCauses:
    def test_union_counterfactuals(self, db):
        # Q_u: ∃x P(x)  ∨  ∃x Q(x) — true via four tuples; removing any
        # single one keeps it true, so responsibilities reflect unions.
        union = UnionQuery((
            boolean_query([atom("P", X)], name="d1"),
            boolean_query([atom("Q", X)], name="d2"),
        ), name="Qu")
        causes = {c.fact: c.responsibility for c in actual_causes(db, union)}
        # Every tuple is a cause; killing the query needs deleting all
        # four tuples, so each has responsibility 1/4.
        assert set(causes) == {
            fact("P", 1), fact("P", 2), fact("Q", 2), fact("Q", 3),
        }
        assert all(r == pytest.approx(0.25) for r in causes.values())

    def test_union_matches_direct(self, db):
        union = UnionQuery((
            boolean_query([atom("P", X)], name="d1"),
            boolean_query([atom("Q", X)], name="d2"),
        ), name="Qu")
        via_repairs = {
            c.fact: c.responsibility for c in actual_causes(db, union)
        }
        direct = {
            c.fact: c.responsibility
            for c in actual_causes_direct(db, union)
        }
        assert via_repairs == direct

    def test_single_disjunct_equals_cq(self, db):
        union = UnionQuery((boolean_query([atom("P", X)], name="d"),))
        as_cq = boolean_query([atom("P", X)], name="d")
        u = {c.fact: c.responsibility for c in actual_causes(db, union)}
        c = {c.fact: c.responsibility for c in actual_causes(db, as_cq)}
        assert u == c

    def test_false_union_no_causes(self, db):
        union = UnionQuery((
            boolean_query([atom("P", 99)], name="d1"),
            boolean_query([atom("Q", 99)], name="d2"),
        ))
        assert actual_causes(db, union) == []
        assert actual_causes_direct(db, union) == []

    def test_non_boolean_union_requires_answer(self, db):
        union = UnionQuery((
            cq([X], [atom("P", X)], name="d1"),
            cq([X], [atom("Q", X)], name="d2"),
        ))
        with pytest.raises(QueryError):
            actual_causes(db, union)
        causes = {
            c.fact for c in actual_causes(db, union, answer=(2,))
        }
        # Both P(2) and Q(2) independently make 2 an answer.
        assert causes == {fact("P", 2), fact("Q", 2)}
        for c in actual_causes(db, union, answer=(2,)):
            assert c.responsibility == pytest.approx(0.5)

    def test_answer_only_in_one_disjunct(self, db):
        union = UnionQuery((
            cq([X], [atom("P", X)], name="d1"),
            cq([X], [atom("Q", X)], name="d2"),
        ))
        causes = actual_causes(db, union, answer=(1,))
        assert [c.fact for c in causes] == [fact("P", 1)]
        assert causes[0].is_counterfactual

    @pytest.mark.parametrize("seed", range(4))
    def test_random_differential(self, seed):
        scenario = random_rs_instance(4, 3, 3, seed=seed)
        union = UnionQuery((
            boolean_query(
                [atom("S", X), atom("R", X, Y), atom("S", Y)], name="d1"
            ),
            boolean_query([atom("R", X, X)], name="d2"),
        ), name="Qu")
        via_repairs = {
            c.fact: c.responsibility
            for c in actual_causes(scenario.db, union)
        }
        direct = {
            c.fact: c.responsibility
            for c in actual_causes_direct(scenario.db, union)
        }
        assert via_repairs == direct
