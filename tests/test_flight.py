"""Flight recorder & deterministic replay.

The acceptance contract under test: a request recorded under a seeded
fault plan replays **bit-for-bit** (answer + per-rung provenance +
outcome), capture is automatic on anomaly signals and on demand, the
explain plane renders the decision trail, and the recorder's always-on
overhead stays under the 5% instrumentation budget (the same op-count
discipline as the live plane).
"""

import io
import json
import pickle
import time

import pytest

from repro.constraints.conflicts import ConflictHypergraph
from repro.dispatch import (
    CQARequest,
    DispatchPolicy,
    Dispatcher,
)
from repro.observability.flight import (
    ANOMALY_EVENT_KINDS,
    ENVELOPE_SCHEMA,
    FlightEnvelope,
    FlightRecorder,
    canonical_answer,
    canonical_json,
    constraints_digest,
    current_recorder,
    flight_begin,
    flight_decision,
    flight_end,
    flight_installed,
    flight_shadow,
    instance_digest,
    normalize_reason,
    predict_rung_cost,
    query_digest,
    read_envelope,
    recording,
    write_envelope,
)
from repro.observability.flight.replay import (
    ReplayReport,
    explain_envelope,
    replay_envelope,
    replay_file,
)
from repro.observability.live import live, request_scope
from repro.runtime import Budget, FaultPlan, inject
from repro.workloads import employee, employee_key_violations


def _record_all(scenario, query, *, policy=None, plan=None, budget=None):
    """Dispatch one request under a capture-everything recorder."""
    recorder = FlightRecorder(mode="all")
    dispatcher = Dispatcher(policy or DispatchPolicy())
    import contextlib

    faults = inject(plan) if plan is not None else contextlib.nullcontext()
    with recording(recorder), faults:
        try:
            dispatcher.dispatch(
                scenario.db, scenario.constraints, query, budget=budget
            )
        except Exception:
            pass
    return recorder


# ----------------------------------------------------------------------
# Envelope: digests, canonical projections, (de)serialization
# ----------------------------------------------------------------------


class TestEnvelope:
    def test_instance_digest_is_content_addressed(self):
        a, b = employee(), employee()
        assert instance_digest(a.db) == instance_digest(b.db)
        other = employee_key_violations(2, 2, 2, seed=1)
        assert instance_digest(a.db) != instance_digest(other.db)

    def test_constraints_digest_is_order_insensitive(self):
        s = employee_key_violations(2, 2, 2, seed=1)
        cs = tuple(s.constraints)
        assert constraints_digest(cs) == constraints_digest(cs[::-1])

    def test_normalize_reason_masks_wall_clock_fragments(self):
        assert (
            normalize_reason("deadline exceeded (elapsed=3.14s)")
            == "deadline exceeded (elapsed=*)"
        )
        assert (
            normalize_reason("engine x exceeded its 2.0s watchdog")
            == "engine x exceeded its * watchdog"
        )
        assert (
            normalize_reason("cooldown 30s after 3 failure(s)")
            == "cooldown * after 3 failure(s)"
        )
        assert normalize_reason("no timings here") == "no timings here"

    def test_canonical_answer_sorts_rows(self):
        first = canonical_answer(frozenset({("b",), ("a",)}), True)
        second = canonical_answer(frozenset({("a",), ("b",)}), True)
        assert first == second
        assert first["rows"] == [["'a'"], ["'b'"]]

    def test_roundtrip_through_file(self, tmp_path):
        scenario = employee()
        recorder = _record_all(scenario, scenario.queries["Q1"])
        env = recorder.captured[-1]
        path = write_envelope(tmp_path, env)
        loaded = read_envelope(path)
        assert loaded.envelope_id == env.envelope_id
        assert loaded.answer == env.answer
        assert loaded.provenance == env.provenance
        db, constraints, query = loaded.unpack_payload()
        assert instance_digest(db) == env.digests["instance"]
        assert query_digest(query) == env.digests["query"]

    def test_schema_mismatch_is_rejected(self, tmp_path):
        scenario = employee()
        recorder = _record_all(scenario, scenario.queries["Q1"])
        record = recorder.captured[-1].to_dict()
        record["schema"] = ENVELOPE_SCHEMA + 1
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(record, default=repr))
        with pytest.raises(ValueError, match="unsupported envelope"):
            read_envelope(path)

    def test_content_id_is_stable_and_discriminating(self):
        scenario = employee()
        first = _record_all(scenario, scenario.queries["Q1"])
        second = _record_all(scenario, scenario.queries["Q1"])
        assert (
            first.captured[-1].envelope_id
            == second.captured[-1].envelope_id
        )
        other = _record_all(scenario, scenario.queries["Q2"])
        assert (
            first.captured[-1].envelope_id
            != other.captured[-1].envelope_id
        )


# ----------------------------------------------------------------------
# Recorder: capture modes, anomaly triggers, install stack
# ----------------------------------------------------------------------


class TestRecorder:
    def test_free_functions_are_noops_when_uninstalled(self):
        assert not flight_installed()
        assert current_recorder() is None
        flight_begin(None, request_id=None, policy={}, budget=None,
                     fault_plan=None, breakers={}, shape_stats=None)
        flight_decision(engine="x", status="ok")
        flight_shadow(True)
        flight_end("ok", "x")  # silent no-ops, nothing raised

    def test_all_mode_captures_clean_requests(self):
        scenario = employee()
        recorder = _record_all(scenario, scenario.queries["Q1"])
        assert len(recorder.captured) == 1
        env = recorder.captured[-1]
        assert env.trigger == ()
        assert env.outcome["status"] == "ok"
        assert env.answer["complete"] is True

    def test_anomaly_mode_skips_clean_requests(self):
        scenario = employee()
        recorder = FlightRecorder(mode="anomaly")
        with recording(recorder):
            Dispatcher().dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q1"]
            )
        assert recorder.requests_seen == 1
        assert len(recorder.captured) == 0

    def test_anomaly_mode_captures_breaker_trip(self):
        scenario = employee()
        recorder = FlightRecorder(mode="anomaly")
        policy = DispatchPolicy(failure_threshold=1)
        dispatcher = Dispatcher(policy)
        plan = FaultPlan(seed=3, sqlite_failure_rate=1.0)
        with recording(recorder), inject(plan):
            dispatcher.dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q1"]
            )
        assert len(recorder.captured) == 1
        env = recorder.captured[-1]
        assert "breaker.transition" in env.trigger
        statuses = [d["status"] for d in env.decisions]
        assert "failed" in statuses and "ok" in statuses

    def test_anomaly_mode_captures_budget_exhaustion(self):
        scenario = employee_key_violations(2, 3, 2, seed=4)
        recorder = FlightRecorder(mode="anomaly")
        # A checkpoint-heavy ladder so the starvation fault actually
        # bites before the rung can answer.
        policy = DispatchPolicy(ladder=("enumerate", "certain-core"))
        plan = FaultPlan(seed=5, starve_steps_after=5)
        with recording(recorder), inject(plan):
            try:
                Dispatcher(policy).dispatch(
                    scenario.db,
                    scenario.constraints,
                    scenario.queries["all"],
                    budget=Budget(max_steps=10_000),
                )
            except Exception:
                pass
        assert len(recorder.captured) == 1
        assert "budget.exhausted" in recorder.captured[-1].trigger

    def test_slo_breach_triggers_capture(self):
        scenario = employee()
        # An unmeetable SLO: every request breaches, so the otherwise
        # clean dispatch below must be captured with the slo trigger.
        recorder = FlightRecorder(mode="anomaly", slo_latency_ms=-1.0)
        with recording(recorder):
            Dispatcher().dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q1"]
            )
        assert len(recorder.captured) == 1
        assert "slo.breach" in recorder.captured[-1].trigger

    def test_writes_envelopes_to_out_dir(self, tmp_path):
        scenario = employee()
        recorder = FlightRecorder(tmp_path, mode="all")
        with recording(recorder):
            Dispatcher().dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q1"]
            )
        assert len(recorder.written) == 1
        assert read_envelope(recorder.written[0]).outcome["status"] == "ok"

    def test_install_stack_nests_and_restores(self):
        outer, inner = FlightRecorder(), FlightRecorder()
        with recording(outer):
            assert current_recorder() is outer
            with recording(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer
        assert current_recorder() is None

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(mode="sometimes")

    def test_predict_rung_cost_scales_enumerate_by_component(self):
        small = predict_rung_cost(
            "enumerate", {"edges": 4, "max_component_size": 2}, 100
        )
        large = predict_rung_cost(
            "enumerate", {"edges": 4, "max_component_size": 12}, 100
        )
        assert large > small * 100
        assert predict_rung_cost("fm-sql", None, 0) > 0


# ----------------------------------------------------------------------
# Replay: the bit-for-bit acceptance contract
# ----------------------------------------------------------------------


class TestReplay:
    def test_clean_request_replays_identically(self):
        scenario = employee()
        recorder = _record_all(scenario, scenario.queries["Q2"])
        report = replay_envelope(recorder.captured[-1])
        assert report.ok, report.render()
        assert report.divergent() == []
        assert "OK" in report.render()

    def test_seeded_fault_plan_replays_bit_for_bit(self):
        """The acceptance test: a request recorded mid-stream under a
        seeded fault plan — injected SQLite failures, a tripped rung,
        carried-over breaker counters — replays identically."""
        scenario = employee_key_violations(3, 3, 2, seed=5)
        query = scenario.queries["all"]
        recorder = FlightRecorder(mode="all")
        dispatcher = Dispatcher(
            DispatchPolicy(shadow_rate=1.0, shadow_seed=9)
        )
        plan = FaultPlan(
            seed=11, sqlite_failure_rate=1.0, max_sqlite_failures=8
        )
        with recording(recorder), inject(plan):
            dispatcher.dispatch(scenario.db, scenario.constraints, query)
            dispatcher.dispatch(scenario.db, scenario.constraints, query)
        assert len(recorder.captured) == 2
        for env in recorder.captured:
            report = replay_envelope(env)
            assert report.ok, report.render()

    def test_step_starvation_replays_bit_for_bit(self):
        scenario = employee_key_violations(2, 3, 2, seed=4)
        recorder = FlightRecorder(mode="all")
        policy = DispatchPolicy(ladder=("enumerate", "certain-core"))
        plan = FaultPlan(seed=12, starve_steps_after=5)
        with recording(recorder), inject(plan):
            try:
                Dispatcher(policy).dispatch(
                    scenario.db,
                    scenario.constraints,
                    scenario.queries["all"],
                    budget=Budget(max_steps=10_000),
                )
            except Exception:
                pass
        env = recorder.captured[-1]
        report = replay_envelope(env)
        assert report.ok, report.render()

    def test_replay_restores_open_breaker_decision(self):
        """A request recorded while a breaker was open must replay the
        same breaker-open skip, even though the replaying dispatcher is
        fresh."""
        scenario = employee()
        recorder = FlightRecorder(mode="all")
        dispatcher = Dispatcher(DispatchPolicy(failure_threshold=1))
        plan = FaultPlan(seed=3, sqlite_failure_rate=1.0)
        with recording(recorder), inject(plan):
            dispatcher.dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q1"]
            )
            dispatcher.dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q1"]
            )
        second = recorder.captured[-1]
        assert second.breakers["fm-sql"]["state"] == "open"
        statuses = [d["status"] for d in second.decisions]
        assert "breaker-open" in statuses
        report = replay_envelope(second)
        assert report.ok, report.render()

    def test_divergence_is_detected_and_rendered(self):
        scenario = employee()
        recorder = _record_all(scenario, scenario.queries["Q1"])
        env = recorder.captured[-1]
        env.answer = dict(env.answer)
        env.answer["rows"] = [["'forged'"]]
        report = replay_envelope(env)
        assert not report.ok
        assert "answer" in report.divergent()
        assert "DIVERGED" in report.render()

    def test_replay_file(self, tmp_path):
        scenario = employee()
        recorder = _record_all(scenario, scenario.queries["Q1"])
        path = write_envelope(tmp_path, recorder.captured[-1])
        assert replay_file(path).ok

    def test_replay_refuses_nested_fault_plan(self):
        scenario = employee()
        plan = FaultPlan(seed=2, sqlite_failure_rate=0.5)
        recorder = _record_all(
            scenario, scenario.queries["Q1"], plan=plan
        )
        env = recorder.captured[-1]
        with inject(FaultPlan(seed=1)):
            with pytest.raises(Exception, match="fault plan"):
                replay_envelope(env)


# ----------------------------------------------------------------------
# Explain: the human rendering
# ----------------------------------------------------------------------


class TestExplain:
    def test_explain_renders_decision_trail(self):
        scenario = employee_key_violations(3, 3, 2, seed=5)
        recorder = _record_all(
            scenario,
            scenario.queries["all"],
            policy=DispatchPolicy(shadow_rate=1.0, shadow_seed=9),
            plan=FaultPlan(
                seed=11, sqlite_failure_rate=1.0, max_sqlite_failures=8
            ),
        )
        text = explain_envelope(recorder.captured[-1])
        assert "ladder decisions:" in text
        assert "conflict shape:" in text
        assert "fault plan: seed=11" in text
        assert "predicted=" in text and "actual=" in text
        assert "outcome:" in text

    def test_explain_shows_shadow_verdict(self):
        scenario = employee()
        recorder = _record_all(
            scenario,
            scenario.queries["Q1"],
            policy=DispatchPolicy(shadow_rate=1.0),
        )
        text = explain_envelope(recorder.captured[-1])
        assert "shadow: sampled=True" in text
        assert "agreed" in text


# ----------------------------------------------------------------------
# Dispatcher integration details
# ----------------------------------------------------------------------


class TestDispatcherIntegration:
    def test_shape_stats_cached_per_instance(self, monkeypatch):
        """Satellite: the dispatcher builds the conflict hypergraph once
        per (db, constraints), not once per request."""
        calls = {"n": 0}
        real_build = ConflictHypergraph.build

        def counting_build(db, constraints):
            calls["n"] += 1
            return real_build(db, constraints)

        monkeypatch.setattr(
            ConflictHypergraph, "build", staticmethod(counting_build)
        )
        scenario = employee()
        dispatcher = Dispatcher()
        with recording(FlightRecorder(mode="all")):
            for _ in range(3):
                dispatcher.dispatch(
                    scenario.db,
                    scenario.constraints,
                    scenario.queries["Q1"],
                )
        assert calls["n"] == 1
        assert len(dispatcher._shape_cache) == 1

    def test_shape_stats_memoized_on_hypergraph(self):
        scenario = employee()
        graph = ConflictHypergraph.build(
            scenario.db, scenario.constraints
        )
        first = graph.shape_stats()
        first["edges"] = -99  # callers get copies, not the cache
        second = graph.shape_stats()
        assert second["edges"] != -99
        assert second == graph.shape_stats()

    def test_no_stats_computed_when_nothing_observes(self):
        scenario = employee()
        dispatcher = Dispatcher()
        dispatcher.dispatch(
            scenario.db, scenario.constraints, scenario.queries["Q1"]
        )
        assert dispatcher._shape_cache == {}

    def test_shadow_sampled_recorded_per_draw(self):
        scenario = employee()
        recorder = FlightRecorder(mode="all")
        dispatcher = Dispatcher(
            DispatchPolicy(shadow_rate=0.5, shadow_seed=1)
        )
        with recording(recorder):
            for _ in range(8):
                dispatcher.dispatch(
                    scenario.db,
                    scenario.constraints,
                    scenario.queries["Q1"],
                )
        sampled = [env.shadow_sampled for env in recorder.captured]
        assert True in sampled and False in sampled
        for env in recorder.captured:
            assert replay_envelope(env).ok


# ----------------------------------------------------------------------
# Worker boundary: request-id propagation + event marshalling
# ----------------------------------------------------------------------


class TestWorkerBoundary:
    def _job(self, **extra):
        scenario = employee_key_violations(2, 3, 2, seed=4)
        request = CQARequest(
            scenario.db,
            tuple(scenario.constraints),
            scenario.queries["all"],
            "s",
        )
        job = {
            # enumerate checkpoints per repair, so a pre-expired budget
            # is guaranteed to fire inside the child
            "engine": "enumerate",
            "request": request,
            "budget_timeout": None,
            "wedge_s": None,
            "request_id": "r424242",
            "collect_events": True,
        }
        job.update(extra)
        return job

    def _run_child(self, job):
        from repro.dispatch.worker import child_main

        out = io.BytesIO()
        assert child_main(io.BytesIO(pickle.dumps(job)), out) == 0
        return pickle.loads(out.getvalue())

    def test_child_runs_under_parent_request_id(self):
        # An immediately-exhausted budget makes the child emit a
        # budget.exhausted event, which must carry the propagated id.
        result = self._run_child(self._job(budget_timeout=1e-9))
        assert result["ok"] is False and result["kind"] == "budget"
        kinds = [e["kind"] for e in result["events"]]
        assert "budget.exhausted" in kinds
        assert all(
            e["request_id"] == "r424242" for e in result["events"]
        )
        assert all(
            "seq" not in e and "ts" not in e for e in result["events"]
        )

    def test_child_without_collection_sends_no_events(self):
        result = self._run_child(self._job(collect_events=False))
        assert result["ok"] is True
        assert "events" not in result

    def test_parent_reemits_child_events(self):
        from repro.dispatch.worker import _replay_child_events

        with live() as plane, request_scope("r000777"):
            _replay_child_events(
                [
                    {
                        "kind": "budget.exhausted",
                        "request_id": "r424242",
                        "reason": "deadline",
                    },
                    {"kind": "not.a.kind", "x": 1},  # dropped, not raised
                ]
            )
        records = plane.events.records(kind="budget.exhausted")
        assert len(records) == 1
        assert records[0]["request_id"] == "r000777"
        assert records[0]["worker"] is True
        assert records[0]["reason"] == "deadline"

    def test_isolated_rung_worker_kill_reaches_recorder(self):
        """A watchdog kill inside an isolated rung is an anomaly: the
        worker.kill event crosses back and triggers capture."""
        scenario = employee()
        recorder = FlightRecorder(mode="anomaly")
        dispatcher = Dispatcher(
            DispatchPolicy(isolate=("fm-sql",), watchdog_s=2.0)
        )
        import repro.dispatch.dispatcher as dispatcher_mod

        original = dispatcher_mod.run_isolated

        def wedge(engine_name, request, **kwargs):
            kwargs["wedge_s"] = 30.0
            return original(engine_name, request, **kwargs)

        dispatcher_mod.run_isolated = wedge
        try:
            with recording(recorder):
                result = dispatcher.dispatch(
                    scenario.db,
                    scenario.constraints,
                    scenario.queries["Q1"],
                )
        finally:
            dispatcher_mod.run_isolated = original
        assert result.complete  # fo-mem picked it up
        assert len(recorder.captured) == 1
        assert "worker.kill" in recorder.captured[-1].trigger


# ----------------------------------------------------------------------
# Overhead: the <5% instrumentation budget
# ----------------------------------------------------------------------


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestFlightOverhead:
    def test_recorder_overhead_under_five_percent(self):
        """Op-count budget, mirroring the live plane's overhead test:
        (recorder ops per request x per-op cost) < 5% of the request's
        wall time.  The always-on anomaly mode never builds envelopes
        for clean requests, so only the begin/decision/event/end dict
        ops count."""
        scenario = employee()
        query = scenario.queries["Q2"]

        def workload():
            Dispatcher().dispatch(
                scenario.db, scenario.constraints, query
            )

        wall = min(_timed(workload) for _ in range(3))

        recorder = FlightRecorder(mode="anomaly")
        with recording(recorder):
            workload()
        assert len(recorder.captured) == 0  # clean request, no envelope
        ops = recorder.op_count
        assert ops > 0

        # Per-op enabled cost: the costliest hook is decision() with
        # its predict_rung_cost call; amortise it over a tight loop.
        bench = FlightRecorder(mode="anomaly")
        request = CQARequest(
            scenario.db, tuple(scenario.constraints), query, "s"
        )
        bench.begin(
            request,
            request_id="r1",
            policy={},
            budget=None,
            fault_plan=None,
            breakers={},
            shape_stats={"edges": 2, "max_component_size": 2},
        )
        loops = 5000
        start = time.perf_counter()
        for _ in range(loops):
            bench.decision(engine="fm-sql", status="ok", slice_s=None)
        op_cost = (time.perf_counter() - start) / loops

        budget = ops * op_cost
        assert budget < 0.05 * wall, (
            f"recorder cost {budget * 1e6:.1f}us exceeds 5% of workload "
            f"{wall * 1e6:.1f}us ({ops} recorder ops)"
        )
