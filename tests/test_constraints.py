"""Tests for constraint types and the conflict hypergraph."""

import pytest

from repro.constraints import (
    ConflictHypergraph,
    DenialConstraint,
    FunctionalDependency,
    InclusionDependency,
    TupleGeneratingDependency,
    ViolationSummary,
    WILDCARD,
    all_satisfied,
    cfd,
    denial,
    key_constraint,
)
from repro.errors import ConstraintError
from repro.logic import atom, neq, vars_
from repro.relational import NULL, Database, RelationSchema, Schema, fact
from repro.workloads import (
    abcde_instance,
    customer_cfd,
    employee,
    rs_instance,
    supply_articles,
    supply_articles_cost,
)

X, Y, Z = vars_("x y z")


class TestInclusionDependency:
    def test_paper_example_21_violation(self):
        scenario = supply_articles()
        (ind,) = scenario.constraints
        assert not ind.is_satisfied(scenario.db)
        violations = ind.violations(scenario.db)
        assert len(violations) == 1
        (v,) = violations
        assert v.facts == frozenset({fact("Supply", "C2", "R1", "I3")})
        assert v.missing == (fact("Articles", "I3"),)

    def test_satisfied_after_fix(self):
        scenario = supply_articles()
        (ind,) = scenario.constraints
        fixed = scenario.db.insert([fact("Articles", "I3")])
        assert ind.is_satisfied(fixed)
        fixed2 = scenario.db.delete([fact("Supply", "C2", "R1", "I3")])
        assert ind.is_satisfied(fixed2)

    def test_tgd_missing_padded_with_null(self):
        scenario = supply_articles_cost()
        (tgd,) = scenario.constraints
        violations = tgd.violations(scenario.db)
        assert len(violations) == 1
        (v,) = violations
        assert v.missing == (fact("Articles", "I3", NULL),)

    def test_null_child_values_satisfy(self):
        schema = Schema.of(
            RelationSchema("Child", ("a",)),
            RelationSchema("Parent", ("a",)),
        )
        db = Database.from_dict(
            {"Child": [(NULL,)], "Parent": [("x",)]}, schema=schema
        )
        ind = InclusionDependency("Child", ("a",), "Parent", ("a",))
        assert ind.is_satisfied(db)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConstraintError):
            InclusionDependency("C", ("a", "b"), "P", ("a",))

    def test_to_tgd_round_trip(self):
        scenario = supply_articles()
        (ind,) = scenario.constraints
        tgd = ind.to_tgd(scenario.db)
        assert len(tgd.violations(scenario.db)) == 1
        assert not tgd.existential_variables()

    def test_existential_tgd(self):
        scenario = supply_articles_cost()
        (tgd,) = scenario.constraints
        assert len(tgd.existential_variables()) == 1

    def test_tgd_formula_evaluates(self):
        from repro.logic import evaluate

        scenario = supply_articles()
        (ind,) = scenario.constraints
        tgd = ind.to_tgd(scenario.db)
        assert not evaluate(scenario.db, tgd.to_formula())
        fixed = scenario.db.insert([fact("Articles", "I3")])
        assert evaluate(fixed, tgd.to_formula())


class TestFunctionalDependency:
    def test_paper_example_33(self):
        scenario = employee()
        (kc,) = scenario.constraints
        violations = kc.violations(scenario.db)
        assert len(violations) == 1
        (v,) = violations
        assert v.facts == frozenset({
            fact("Employee", "page", "5K"),
            fact("Employee", "page", "8K"),
        })

    def test_null_lhs_never_conflicts(self):
        schema = Schema.of(RelationSchema("R", ("K", "V")))
        db = Database.from_dict(
            {"R": [(NULL, 1), (NULL, 2)]}, schema=schema
        )
        fd = FunctionalDependency("R", ("K",), ("V",))
        assert fd.is_satisfied(db)

    def test_null_rhs_never_conflicts(self):
        db = Database.from_dict({"R": [("k", NULL), ("k", 2)]})
        fd = FunctionalDependency("R", ("a0",), ("a1",))
        assert fd.is_satisfied(db)

    def test_multi_attribute_rhs(self):
        db = Database.from_dict({"R": [("k", 1, 2), ("k", 1, 3)]})
        fd = FunctionalDependency("R", ("a0",), ("a1", "a2"))
        assert len(fd.violations(db)) == 1

    def test_overlapping_sides_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency("R", ("a",), ("a", "b"))

    def test_key_constraint_from_schema(self):
        scenario = employee()
        kc = key_constraint(scenario.db, "Employee")
        assert kc.lhs == ("Name",)
        assert kc.rhs == ("Salary",)

    def test_key_constraint_requires_declared_key(self):
        db = Database.from_dict({"R": [(1, 2)]})
        with pytest.raises(ConstraintError):
            key_constraint(db, "R")

    def test_to_denial_constraints(self):
        scenario = employee()
        (kc,) = scenario.constraints
        dcs = kc.to_denial_constraints(scenario.db)
        assert len(dcs) == 1
        dc_violations = dcs[0].violations(scenario.db)
        assert len(dc_violations) == 1
        assert dc_violations[0].facts == kc.violations(scenario.db)[0].facts


class TestDenialConstraint:
    def test_paper_kappa_violations(self):
        scenario = rs_instance()
        (kappa,) = scenario.constraints
        violations = kappa.violations(scenario.db)
        # Two forbidden joins: (S(a4), R(a4,a3), S(a3)) and
        # (S(a3), R(a3,a3), S(a3)).
        assert len(violations) == 2
        edges = {v.facts for v in violations}
        assert frozenset({
            fact("S", "a4"), fact("R", "a4", "a3"), fact("S", "a3"),
        }) in edges
        assert frozenset({
            fact("S", "a3"), fact("R", "a3", "a3"),
        }) in edges

    def test_null_disables_join(self):
        scenario = rs_instance()
        (kappa,) = scenario.constraints
        db = scenario.db
        tid = db.tid_of(fact("S", "a3"))
        nulled = db.update_value(tid, 0, NULL)
        assert kappa.is_satisfied(nulled)

    def test_empty_atoms_rejected(self):
        with pytest.raises(ConstraintError):
            DenialConstraint((), name="bad")

    def test_loose_comparison_variable_rejected(self):
        with pytest.raises(ConstraintError):
            DenialConstraint((atom("R", X),), (neq(X, Y),))

    def test_join_positions(self):
        scenario = rs_instance()
        (kappa,) = scenario.constraints
        relevant = kappa.join_positions()
        # S(x), R(x,y), S(y): every position holds a join variable.
        assert relevant == {(0, 0), (1, 0), (1, 1), (2, 0)}

    def test_join_positions_with_constant_and_comparison(self):
        dc = DenialConstraint(
            (atom("R", X, Y, "c", Z),),
            (neq(X, 5),),
            name="dc",
        )
        # x compared, 'c' constant; y and z occur once, uncompared.
        assert dc.join_positions() == {(0, 0), (0, 2)}

    def test_to_formula(self):
        from repro.logic import evaluate

        scenario = rs_instance()
        (kappa,) = scenario.constraints
        assert not evaluate(scenario.db, kappa.to_formula())
        repaired = scenario.db.delete([fact("S", "a3")])
        assert evaluate(repaired, kappa.to_formula())


class TestCFD:
    def test_paper_section6(self):
        scenario = customer_cfd()
        fd1, fd2, phi = scenario.constraints
        # The two plain FDs hold; the CFD is violated.
        assert fd1.is_satisfied(scenario.db)
        assert fd2.is_satisfied(scenario.db)
        violations = phi.violations(scenario.db)
        assert len(violations) == 1
        (v,) = violations
        names = {f.values[3] for f in v.facts}
        assert names == {"mike", "rick"}

    def test_constant_rhs_pattern(self):
        db = Database.from_dict({
            "R": [("44", "york"), ("44", "leeds"), ("01", "nyc")],
        })
        constraint = cfd(
            "R", ("a0",), ("a1",),
            [(("44",), ("york",))],
        )
        violations = constraint.violations(db)
        assert len(violations) == 1
        (v,) = violations
        assert v.facts == frozenset({fact("R", "44", "leeds")})

    def test_wildcard_pattern_is_plain_fd(self):
        db = Database.from_dict({"R": [("a", 1), ("a", 2), ("b", 1)]})
        constraint = cfd(
            "R", ("a0",), ("a1",),
            [((WILDCARD,), (WILDCARD,))],
        )
        assert len(constraint.violations(db)) == 1

    def test_pattern_width_checked(self):
        with pytest.raises(ConstraintError):
            cfd("R", ("a", "b"), ("c",), [(("44",), (WILDCARD,))])

    def test_null_never_matches_pattern(self):
        db = Database.from_dict({"R": [(NULL, 1), ("44", 2), ("44", 3)]})
        constraint = cfd(
            "R", ("a0",), ("a1",),
            [(("44",), (WILDCARD,))],
        )
        assert len(constraint.violations(db)) == 1


class TestConflictHypergraph:
    def test_figure1(self):
        scenario = abcde_instance()
        graph = ConflictHypergraph.build(scenario.db, scenario.constraints)
        db = scenario.db
        tid = {
            name: db.tid_of(fact(name, "a"))
            for name in ("A", "B", "C", "D", "E")
        }
        expected_edges = {
            frozenset({tid["B"], tid["E"]}),
            frozenset({tid["B"], tid["C"], tid["D"]}),
            frozenset({tid["A"], tid["C"]}),
        }
        assert graph.edges == expected_edges

    def test_example_41_s_and_c_repairs(self):
        scenario = abcde_instance()
        db = scenario.db
        graph = ConflictHypergraph.build(db, scenario.constraints)
        mis = graph.maximal_independent_sets()
        repaired = {
            frozenset(db.fact_by_tid(t).relation for t in s) for s in mis
        }
        assert repaired == {
            frozenset({"B", "C"}),
            frozenset({"C", "D", "E"}),
            frozenset({"A", "B", "D"}),
            frozenset({"E", "D", "A"}),
        }
        minimum = graph.minimum_hitting_sets()
        c_repaired = {
            frozenset(db.fact_by_tid(t).relation
                      for t in graph.nodes - h)
            for h in minimum
        }
        # D1 = {B, C} deletes three tuples and is not a C-repair.
        assert c_repaired == {
            frozenset({"C", "D", "E"}),
            frozenset({"A", "B", "D"}),
            frozenset({"E", "D", "A"}),
        }

    def test_rejects_tgds(self):
        scenario = supply_articles()
        with pytest.raises(ConstraintError):
            ConflictHypergraph.build(scenario.db, scenario.constraints)

    def test_conflict_free_core(self):
        scenario = rs_instance()
        graph = ConflictHypergraph.build(scenario.db, scenario.constraints)
        core = {
            scenario.db.fact_by_tid(t) for t in graph.conflict_free_tids()
        }
        assert fact("R", "a2", "a1") in core
        assert fact("S", "a2") in core

    def test_is_independent(self):
        scenario = abcde_instance()
        db = scenario.db
        graph = ConflictHypergraph.build(db, scenario.constraints)
        b, c = db.tid_of(fact("B", "a")), db.tid_of(fact("C", "a"))
        e = db.tid_of(fact("E", "a"))
        assert graph.is_independent({b, c})
        assert not graph.is_independent({b, e})

    def test_empty_graph_single_trivial_repair(self):
        db = Database.from_dict({"R": [(1,)]})
        graph = ConflictHypergraph.build(db, ())
        assert graph.minimal_hitting_sets() == [frozenset()]
        assert graph.maximal_independent_sets() == [db.tids()]

    def test_render_ascii(self):
        scenario = abcde_instance()
        graph = ConflictHypergraph.build(scenario.db, scenario.constraints)
        text = graph.render_ascii(scenario.db)
        assert "edge e0" in text
        assert "B(" in text

    def test_to_networkx(self):
        scenario = abcde_instance()
        graph = ConflictHypergraph.build(scenario.db, scenario.constraints)
        g = graph.to_networkx()
        conflict_nodes = [
            n for n, d in g.nodes(data=True) if d["kind"] == "conflict"
        ]
        assert len(conflict_nodes) == 3

    def test_violation_summary(self):
        scenario = abcde_instance()
        summary = ViolationSummary.of(scenario.db, scenario.constraints)
        assert summary.total_violations == 3
        assert len(summary.violating_facts) == 5


class TestCFDAsDenialConstraints:
    def test_paper_cfd_violations_match(self):
        scenario = customer_cfd()
        _, _, phi = scenario.constraints
        dcs = phi.to_denial_constraints(scenario.db)
        native = {v.facts for v in phi.violations(scenario.db)}
        via_dc = {
            v.facts for dc in dcs for v in dc.violations(scenario.db)
        }
        assert native == via_dc

    def test_constant_rhs_pattern_as_dc(self):
        db = Database.from_dict({
            "R": [("44", "york"), ("44", "leeds"), ("01", "nyc")],
        })
        constraint = cfd(
            "R", ("a0",), ("a1",), [(("44",), ("york",))]
        )
        dcs = constraint.to_denial_constraints(db)
        assert len(dcs) == 1
        native = {v.facts for v in constraint.violations(db)}
        via_dc = {v.facts for v in dcs[0].violations(db)}
        assert native == via_dc

    def test_cfd_repairs_via_asp(self):
        from repro.asp import RepairProgram
        from repro.repairs import s_repairs

        scenario = customer_cfd()
        _, _, phi = scenario.constraints
        rp = RepairProgram(scenario.db, (phi,))
        via_asp = {r.instance.facts() for r in rp.repairs()}
        direct = {
            r.instance.facts() for r in s_repairs(scenario.db, (phi,))
        }
        assert via_asp == direct
        assert len(via_asp) == 2

    def test_cfd_attribute_repairs_through_dcs(self):
        from repro.repairs import attribute_repairs

        scenario = customer_cfd()
        _, _, phi = scenario.constraints
        dcs = phi.to_denial_constraints(scenario.db)
        repairs = attribute_repairs(scenario.db, dcs)
        assert repairs
        for r in repairs:
            assert phi.is_satisfied(r.instance)

    def test_mixed_pattern_as_dcs(self):
        db = Database.from_dict({
            "R": [("44", "a", "x"), ("44", "a", "y"), ("44", "b", "x")],
        })
        constraint = cfd(
            "R", ("a0", "a1"), ("a2",),
            [(("44", WILDCARD), (WILDCARD,))],
        )
        dcs = constraint.to_denial_constraints(db)
        native = {v.facts for v in constraint.violations(db)}
        via_dc = {
            v.facts for dc in dcs for v in dc.violations(db)
        }
        assert native == via_dc
        assert len(native) == 1
