"""Tests for virtual data integration (Examples 5.1 and 5.2)."""

import pytest

from repro.constraints import FunctionalDependency
from repro.errors import IntegrationError
from repro.integration import (
    GLOBAL_SCHEMA,
    GavMediator,
    LavMapping,
    Source,
    consistent_global_answers,
    is_globally_consistent,
    numbers_names_query,
    same_field_query,
    university_gav_mediator,
    university_lav_mediator,
)
from repro.logic import atom, cq, vars_
from repro.relational import Database, fact

X, Y, Z = vars_("x y z")


class TestExample51:
    def setup_method(self):
        self.mediator = university_gav_mediator()

    def test_retrieved_global_instance(self):
        instance = self.mediator.retrieved_global_instance()
        rows = set(instance.relation("Stds"))
        assert rows == {
            (101, "john", "cu", "alg"),
            (102, "mary", "cu", "ai"),
            (103, "claire", "ou", "db"),
        }

    def test_same_field_query_empty(self):
        # Nobody studies the same field at both universities.
        assert self.mediator.answer(same_field_query()) == frozenset()

    def test_same_field_query_nonempty_after_overlap(self):
        sources = list(self.mediator.sources)
        ottawa = sources[1].database.insert([
            fact("OUstds", 105, "john"),
            fact("SpecOU", 105, "alg"),
        ])
        mediator = GavMediator(
            self.mediator.global_schema,
            (sources[0], Source("ottawa", ottawa)),
            self.mediator.mappings,
        )
        assert mediator.answer(same_field_query()) == {("john",)}

    def test_global_consistency_holds(self):
        key = FunctionalDependency(
            "Stds", ("Number",), ("Name",), name="globalFD"
        )
        assert is_globally_consistent(self.mediator, (key,))


class TestExample52:
    def setup_method(self):
        self.mediator = university_gav_mediator(conflicting=True)
        self.key = FunctionalDependency(
            "Stds", ("Number",), ("Name",), name="globalFD"
        )

    def test_global_violation_detected(self):
        assert not is_globally_consistent(self.mediator, (self.key,))
        instance = self.mediator.retrieved_global_instance()
        numbers = [row[0] for row in instance.relation("Stds")]
        assert numbers.count(101) == 2

    def test_consistent_global_answers(self):
        answers = consistent_global_answers(
            self.mediator, (self.key,), numbers_names_query()
        )
        # 101 has two names globally; no name for it is certain.
        assert (101, "john") not in answers
        assert (101, "sue") not in answers
        assert (102, "mary") in answers
        assert (103, "claire") in answers

    def test_numbers_remain_certain(self):
        u, z = vars_("u z")
        numbers_query = cq([X], [atom("Stds", X, Y, u, z)], name="numbers")
        answers = consistent_global_answers(
            self.mediator, (self.key,), numbers_query
        )
        assert (101,) in answers

    def test_rewrite_method_agrees(self):
        q = numbers_names_query()
        enumerated = consistent_global_answers(
            self.mediator, (self.key,), q, method="enumerate"
        )
        key_constraint = FunctionalDependency(
            "Stds", ("Number",), ("Name", "Univ", "Field"), name="key"
        )
        rewritten = consistent_global_answers(
            self.mediator, (key_constraint,), q, method="rewrite"
        )
        # Different constraint strength: Number -> Name vs full key; with
        # the full key the same 101-answers are excluded.
        assert (101, "john") not in rewritten
        assert (102, "mary") in rewritten
        assert enumerated <= rewritten | enumerated

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            consistent_global_answers(
                self.mediator, (self.key,), numbers_names_query(),
                method="magic",
            )


class TestLav:
    def test_canonical_instance_has_labeled_nulls(self):
        mediator = university_lav_mediator()
        instance = mediator.canonical_global_instance()
        rows = instance.relation("Stds")
        assert len(rows) == 2
        from repro.relational import is_labeled_null

        for row in rows:
            assert row[2] == "cu"
            assert is_labeled_null(row[3])

    def test_certain_answers_drop_nulls(self):
        mediator = university_lav_mediator()
        u, z = vars_("u z")
        q = cq([X, Y], [atom("Stds", X, Y, u, z)], name="q")
        assert mediator.certain_answers(q) == {
            (101, "john"), (102, "mary"),
        }
        q_fields = cq([Z], [atom("Stds", X, Y, u, Z)], name="fields")
        assert mediator.certain_answers(q_fields) == frozenset()

    def test_lav_mapping_validation(self):
        with pytest.raises(IntegrationError):
            LavMapping(atom("V", X, Y), (atom("G", X),))

    def test_lav_body_must_be_global(self):
        mapping = LavMapping(atom("CUstds", X, Y), (atom("Nope", X, Y),))
        sources = (
            Source("s", Database.from_dict({"CUstds": [(1, "a")]})),
        )
        from repro.integration import LavMediator

        with pytest.raises(IntegrationError):
            LavMediator(GLOBAL_SCHEMA, sources, (mapping,))


class TestMediatorValidation:
    def test_empty_sources_rejected(self):
        with pytest.raises(IntegrationError):
            GavMediator(GLOBAL_SCHEMA, (), ()).retrieved_global_instance()

    def test_mapping_head_must_be_global(self):
        from repro.datalog import rule

        bad = rule(atom("NotGlobal", X), [atom("CUstds", X, Y)])
        with pytest.raises(IntegrationError):
            GavMediator(
                GLOBAL_SCHEMA,
                (Source("s", Database.from_dict({"CUstds": [(1, "a")]})),),
                (bad,),
            )
