"""Tests for the stratified Datalog engine."""

import pytest

from repro.datalog import Program, evaluate_program, materialize, negated, rule
from repro.errors import QueryError
from repro.logic import Comparison, atom, vars_
from repro.relational import Database

X, Y, Z = vars_("x y z")


@pytest.fixture
def graph_db():
    return Database.from_dict({
        "edge": [(1, 2), (2, 3), (3, 4)],
    })


class TestEvaluation:
    def test_transitive_closure(self, graph_db):
        program = Program((
            rule(atom("path", X, Y), [atom("edge", X, Y)]),
            rule(atom("path", X, Z), [atom("edge", X, Y), atom("path", Y, Z)]),
        ))
        derived = evaluate_program(program, graph_db)
        assert (1, 4) in derived["path"]
        assert len(derived["path"]) == 6

    def test_conditions(self, graph_db):
        program = Program((
            rule(
                atom("big", X, Y), [atom("edge", X, Y)],
                conditions=[Comparison(">", Y, 2)],
            ),
        ))
        derived = evaluate_program(program, graph_db)
        assert derived["big"] == {(2, 3), (3, 4)}

    def test_stratified_negation(self, graph_db):
        # unreachable-from-1: nodes with no path from 1.
        program = Program((
            rule(atom("node", X), [atom("edge", X, Y)]),
            rule(atom("node", Y), [atom("edge", X, Y)]),
            rule(atom("path", X, Y), [atom("edge", X, Y)]),
            rule(atom("path", X, Z), [atom("edge", X, Y), atom("path", Y, Z)]),
            rule(
                atom("unreachable", X),
                [atom("node", X), negated(atom("path", 1, X))],
            ),
        ))
        derived = evaluate_program(program, graph_db)
        assert derived["unreachable"] == {(1,)}

    def test_non_stratifiable_rejected(self, graph_db):
        program = Program((
            rule(atom("p", X), [atom("edge", X, Y), negated(atom("q", X))]),
            rule(atom("q", X), [atom("edge", X, Y), negated(atom("p", X))]),
        ))
        with pytest.raises(QueryError):
            evaluate_program(program, graph_db)

    def test_unsafe_head_rejected(self):
        with pytest.raises(QueryError):
            rule(atom("p", X, Z), [atom("edge", X, Y)])

    def test_unsafe_negation_rejected(self):
        with pytest.raises(QueryError):
            rule(atom("p", X), [atom("edge", X, Y), negated(atom("q", Z))])

    def test_materialize(self, graph_db):
        program = Program((
            rule(atom("path", X, Y), [atom("edge", X, Y)]),
            rule(atom("path", X, Z), [atom("edge", X, Y), atom("path", Y, Z)]),
        ))
        db = materialize(program, graph_db, predicates=["path"])
        assert len(db.relation("path")) == 6
        with pytest.raises(QueryError):
            materialize(program, graph_db, predicates=["nope"])

    def test_constants_in_rules(self, graph_db):
        program = Program((
            rule(atom("from1", Y), [atom("edge", 1, Y)]),
        ))
        derived = evaluate_program(program, graph_db)
        assert derived["from1"] == {(2,)}

    def test_stratification_levels(self):
        program = Program((
            rule(atom("a", X), [atom("e", X)]),
            rule(atom("b", X), [atom("e", X), negated(atom("a", X))]),
            rule(atom("c", X), [atom("e", X), negated(atom("b", X))]),
        ))
        strata = program.stratification()
        level = {p: i for i, s in enumerate(strata) for p in s}
        assert level["a"] < level["b"] < level["c"]
