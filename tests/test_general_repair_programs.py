"""Tests for the general (interacting-IC) repair programs.

These are the programs with the "couple of extra annotations" the paper
mentions for ICs whose repair actions interact — deletions cascading into
inclusion dependencies, insertions triggering denial constraints.
"""

import pytest

from repro.asp import GeneralRepairProgram
from repro.constraints import (
    DenialConstraint,
    FunctionalDependency,
    InclusionDependency,
    TupleGeneratingDependency,
)
from repro.errors import SolverError
from repro.logic import atom, cq, vars_
from repro.relational import NULL, Database, RelationSchema, Schema, fact
from repro.repairs import null_tuple_repairs, s_repairs
from repro.workloads import (
    abcde_instance,
    employee,
    rs_instance,
    supply_articles,
    supply_articles_cost,
)

X, Y, Z = vars_("x y z")


def _diffs(repairs):
    return {r.instance.facts() for r in repairs}


class TestPaperExamplesViaGeneralProgram:
    def test_example_31_including_insertion_repair(self):
        scenario = supply_articles()
        grp = GeneralRepairProgram(scenario.db, scenario.constraints)
        assert grp.stable_model_count() == 2
        assert _diffs(grp.repairs()) == _diffs(
            s_repairs(scenario.db, scenario.constraints)
        )
        inserted = {
            f for r in grp.repairs() for f in r.inserted
        }
        assert fact("Articles", "I3") in inserted

    def test_example_43_null_insertion(self):
        scenario = supply_articles_cost()
        grp = GeneralRepairProgram(scenario.db, scenario.constraints)
        assert _diffs(grp.repairs()) == _diffs(
            null_tuple_repairs(scenario.db, scenario.constraints)
        )
        inserted = {
            f for r in grp.repairs() for f in r.inserted
        }
        assert fact("Articles", "I3", NULL) in inserted

    def test_denial_only_matches_simple_program(self):
        for scenario in (rs_instance(), abcde_instance(), employee()):
            grp = GeneralRepairProgram(scenario.db, scenario.constraints)
            assert _diffs(grp.repairs()) == _diffs(
                s_repairs(scenario.db, scenario.constraints)
            ), scenario.name

    def test_cqa_via_general_program(self):
        scenario = supply_articles()
        grp = GeneralRepairProgram(scenario.db, scenario.constraints)
        answers = grp.consistent_answers(scenario.queries["Q"])
        assert answers == {("I1",), ("I2",)}


class TestInteractingConstraints:
    def test_dc_deletion_cascades_into_ind(self):
        # DC forbids Bad items in Articles; ID requires supplied items in
        # Articles.  Repairing the DC (delete Articles(I1)) re-violates
        # the ID — the interacting case needing the extra annotations.
        schema = Schema.of(
            RelationSchema("Supply", ("Item",)),
            RelationSchema("Articles", ("Item",)),
            RelationSchema("Bad", ("Item",)),
        )
        db = Database.from_dict(
            {
                "Supply": [("I1",)],
                "Articles": [("I1",)],
                "Bad": [("I1",)],
            },
            schema=schema,
        )
        constraints = (
            DenialConstraint(
                (atom("Articles", X), atom("Bad", X)), name="no_bad"
            ),
            InclusionDependency(
                "Supply", ("Item",), "Articles", ("Item",), name="ID"
            ),
        )
        grp = GeneralRepairProgram(db, constraints)
        via_asp = _diffs(grp.repairs())
        direct = _diffs(s_repairs(db, constraints))
        assert via_asp == direct
        # Exactly two repairs: delete Bad(I1), or cascade — deleting
        # Articles(I1) for the DC forces deleting Supply(I1) for the ID.
        assert via_asp == {
            frozenset({fact("Supply", "I1"), fact("Articles", "I1")}),
            frozenset({fact("Bad", "I1")}),
        }

    def test_insertion_triggers_second_ind(self):
        # A ⊆ B and B ⊆ C: inserting into B must trigger insertion into C.
        schema = Schema.of(
            RelationSchema("A", ("v",)),
            RelationSchema("B", ("v",)),
            RelationSchema("C", ("v",)),
        )
        db = Database.from_dict(
            {"A": [("x",)], "B": [], "C": []}, schema=schema
        )
        constraints = (
            InclusionDependency("A", ("v",), "B", ("v",), name="ab"),
            InclusionDependency("B", ("v",), "C", ("v",), name="bc"),
        )
        grp = GeneralRepairProgram(db, constraints)
        via_asp = _diffs(grp.repairs())
        direct = _diffs(s_repairs(db, constraints))
        assert via_asp == direct
        chained = frozenset({fact("A", "x"), fact("B", "x"), fact("C", "x")})
        assert chained in via_asp

    def test_inserted_fact_violating_dc_forces_deletion_path(self):
        # The only insertion that could fix the IND violates a DC, so
        # every repair must go through deletion of the Supply tuple.
        schema = Schema.of(
            RelationSchema("Supply", ("Item",)),
            RelationSchema("Articles", ("Item",)),
        )
        db = Database.from_dict(
            {"Supply": [("I9",)], "Articles": []}, schema=schema
        )
        constraints = (
            InclusionDependency(
                "Supply", ("Item",), "Articles", ("Item",), name="ID"
            ),
            DenialConstraint((atom("Articles", "I9"),), name="no_I9"),
        )
        grp = GeneralRepairProgram(db, constraints)
        repairs = grp.repairs()
        assert _diffs(repairs) == _diffs(s_repairs(db, constraints))
        assert len(repairs) == 1
        assert repairs[0].deleted == frozenset({fact("Supply", "I9")})

    @pytest.mark.parametrize("seed", range(4))
    def test_random_differential_dc_only(self, seed):
        from repro.workloads import random_rs_instance

        scenario = random_rs_instance(4, 3, 3, seed=seed)
        grp = GeneralRepairProgram(scenario.db, scenario.constraints)
        assert _diffs(grp.repairs()) == _diffs(
            s_repairs(scenario.db, scenario.constraints)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_random_differential_with_ind(self, seed):
        from repro.workloads import supply_chain

        scenario = supply_chain(4, 0.5, seed=seed)
        grp = GeneralRepairProgram(scenario.db, scenario.constraints)
        assert _diffs(grp.repairs()) == _diffs(
            s_repairs(scenario.db, scenario.constraints)
        )


class TestValidation:
    def test_multi_atom_tgd_rejected(self):
        db = Database.from_dict({"P": [(1,)], "Q": [(1,)], "R": [(1,)]})
        tgd = TupleGeneratingDependency(
            (atom("P", X), atom("Q", X)), (atom("R", X),), name="multi"
        )
        with pytest.raises(SolverError):
            GeneralRepairProgram(db, (tgd,))

    def test_repeated_existential_rejected(self):
        db = Database.from_dict({"P": [(1,)], "Q": [(1, 1)]})
        v = vars_("v")[0]
        tgd = TupleGeneratingDependency(
            (atom("P", X),), (atom("Q", v, v),), name="rep"
        )
        with pytest.raises(SolverError):
            GeneralRepairProgram(db, (tgd,))

    def test_null_frontier_vacuously_satisfied(self):
        schema = Schema.of(
            RelationSchema("Child", ("a",)),
            RelationSchema("Parent", ("a",)),
        )
        db = Database.from_dict(
            {"Child": [(NULL,)], "Parent": []}, schema=schema
        )
        ind = InclusionDependency("Child", ("a",), "Parent", ("a",))
        grp = GeneralRepairProgram(db, (ind,))
        repairs = grp.repairs()
        assert len(repairs) == 1
        assert repairs[0].size == 0


class TestGeneralProgramCRepairs:
    def test_c_repairs_with_insertions(self):
        scenario = supply_articles()
        grp = GeneralRepairProgram(
            scenario.db, scenario.constraints,
            include_weak_constraints=True,
        )
        from repro.repairs import c_repairs

        via = {r.instance.facts() for r in grp.c_repairs()}
        direct = {
            r.instance.facts()
            for r in c_repairs(scenario.db, scenario.constraints)
        }
        assert via == direct
        assert len(via) == 2  # deletion and insertion both cost 1

    def test_insertion_cheaper_than_cascade(self):
        # Two supplies of a missing item: inserting Articles(I9) once
        # (cost 1) beats deleting both Supply tuples (cost 2).
        schema = Schema.of(
            RelationSchema("Supply", ("Company", "Item")),
            RelationSchema("Articles", ("Item",)),
        )
        db = Database.from_dict(
            {"Supply": [("C1", "I9"), ("C2", "I9")], "Articles": []},
            schema=schema,
        )
        ind = InclusionDependency(
            "Supply", ("Item",), "Articles", ("Item",), name="ID"
        )
        grp = GeneralRepairProgram(
            db, (ind,), include_weak_constraints=True
        )
        repairs = grp.c_repairs()
        assert len(repairs) == 1
        assert repairs[0].inserted == frozenset({fact("Articles", "I9")})
        assert not repairs[0].deleted

    def test_flag_required(self):
        scenario = supply_articles()
        grp = GeneralRepairProgram(scenario.db, scenario.constraints)
        with pytest.raises(SolverError):
            grp.c_repairs()
