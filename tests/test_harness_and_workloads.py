"""Tests for the experiment harness and the workload generators."""

import pytest

from repro.harness import ExperimentResult, registry, run
from repro.workloads import (
    ALL_SCENARIOS,
    employee_key_violations,
    random_fd_instance,
    random_rs_instance,
    supply_chain,
)


class TestHarness:
    def test_registry_covers_all_experiment_ids(self):
        ids = set(registry())
        expected_examples = {
            "EX2.1", "EX3.1", "EX3.2", "EX3.3", "EX3.4", "EX3.5",
            "EX4.1", "EX4.2", "EX4.3", "EX4.4", "EX5.1", "EX5.2",
            "EX6", "EX7.1", "EX7.2", "EX7.3", "EX7.4", "FIG1",
        }
        expected_claims = {f"B{i}" for i in range(1, 11)}
        assert expected_examples <= ids
        assert expected_claims <= ids

    @pytest.mark.parametrize(
        "exp_id",
        ["EX2.1", "EX3.1", "EX3.2", "EX3.3", "EX4.1", "EX4.3",
         "EX5.1", "EX6", "EX7.1", "FIG1"],
    )
    def test_fast_experiments_match(self, exp_id):
        result = run(exp_id)
        assert isinstance(result, ExperimentResult)
        assert result.match, result.render()

    def test_result_rendering(self):
        result = run("EX3.2")
        text = result.render()
        assert "[EX3.2]" in text
        assert "MATCH" in text
        assert "paper:" in text and "measured:" in text

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run("EX99")


class TestScenarios:
    def test_all_scenarios_build(self):
        for build in ALL_SCENARIOS:
            scenario = build()
            assert len(scenario.db) > 0
            assert scenario.constraints
            assert scenario.description

    def test_paper_scenarios_are_inconsistent(self):
        from repro.constraints import all_satisfied
        from repro.workloads import customer_cfd, dep_course

        for build in ALL_SCENARIOS:
            scenario = build()
            if scenario.name == "dep_course":
                # Example 7.4 *satisfies* its IC by design.
                assert all_satisfied(scenario.db, scenario.constraints)
            else:
                assert not all_satisfied(
                    scenario.db, scenario.constraints
                ), scenario.name

    def test_rs_instance_tids_follow_paper(self):
        from repro.relational import fact
        from repro.workloads import rs_instance

        db = rs_instance().db
        assert db.fact_by_tid("t1") == fact("R", "a4", "a3")
        assert db.fact_by_tid("t6") == fact("S", "a3")


class TestGenerators:
    def test_deterministic_given_seed(self):
        a = employee_key_violations(5, 3, 2, seed=7)
        b = employee_key_violations(5, 3, 2, seed=7)
        assert a.db == b.db
        c = employee_key_violations(5, 3, 2, seed=8)
        assert a.db != c.db

    def test_violation_count_is_exact(self):
        scenario = employee_key_violations(5, 3, 2, seed=7)
        (kc,) = scenario.constraints
        # 3 groups of 2 conflicting tuples: one pair violation each.
        assert len(kc.violations(scenario.db)) == 3

    def test_group_size(self):
        scenario = employee_key_violations(0, 1, 4, seed=7)
        (kc,) = scenario.constraints
        # One group of 4: C(4,2) = 6 pair violations.
        assert len(kc.violations(scenario.db)) == 6

    def test_rs_generator_clamps_to_domain(self):
        scenario = random_rs_instance(100, 100, 3, seed=0)
        assert len(scenario.db.relation("S")) <= 3
        assert len(scenario.db.relation("R")) <= 9

    def test_fd_generator_clamps(self):
        scenario = random_fd_instance(100, 2, 2, seed=0)
        assert len(scenario.db.relation("R")) <= 4

    def test_supply_chain_missing_rate(self):
        none_missing = supply_chain(10, 0.0, seed=1)
        (ind,) = none_missing.constraints
        assert ind.is_satisfied(none_missing.db)
        all_missing = supply_chain(10, 1.0, seed=1)
        (ind2,) = all_missing.constraints
        assert len(ind2.violations(all_missing.db)) == 10

    def test_rs_generator_deterministic(self):
        a = random_rs_instance(5, 4, 4, seed=3)
        b = random_rs_instance(5, 4, 4, seed=3)
        assert a.db == b.db
