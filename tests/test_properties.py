"""Property-based tests (hypothesis) on the core invariants.

These cover the paper's defining properties over randomly generated
instances: minimality and consistency of repairs, the antichain
structure of S-repair diffs, equality of independent computation paths
(hypergraph vs search, enumeration vs rewriting, repairs vs causes), and
the metric behaviour of the cleaning similarity.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.cleaning import edit_distance
from repro.constraints import (
    ConflictHypergraph,
    DenialConstraint,
    FunctionalDependency,
)
from repro.cqa import consistent_answers, consistent_answers_fm
from repro.logic import atom, cq, vars_
from repro.relational import Database, Fact, RelationSchema, Schema
from repro.repairs import (
    c_repairs,
    count_s_repairs,
    is_s_repair,
    s_repairs,
)

X, Y = vars_("x y")

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_VALUES = st.sampled_from(["a0", "a1", "a2", "a3"])

_RS_SCHEMA = Schema.of(
    RelationSchema("R", ("A", "B")),
    RelationSchema("S", ("A",)),
)

_KV_SCHEMA = Schema.of(RelationSchema("R", ("K", "V"), key=("K",)))

KAPPA = DenialConstraint(
    (atom("S", X), atom("R", X, Y), atom("S", Y)), name="kappa"
)

FD = FunctionalDependency("R", ("K",), ("V",), name="FD")


@st.composite
def rs_databases(draw):
    r_rows = draw(st.lists(
        st.tuples(_VALUES, _VALUES), min_size=0, max_size=5, unique=True,
    ))
    s_rows = draw(st.lists(
        st.tuples(_VALUES), min_size=0, max_size=4, unique=True,
    ))
    return Database.from_dict(
        {"R": r_rows, "S": s_rows}, schema=_RS_SCHEMA
    )


@st.composite
def kv_databases(draw):
    rows = draw(st.lists(
        st.tuples(
            st.sampled_from(["k0", "k1", "k2"]),
            st.sampled_from(["v0", "v1", "v2"]),
        ),
        min_size=0, max_size=7, unique=True,
    ))
    return Database.from_dict({"R": rows}, schema=_KV_SCHEMA)


# ----------------------------------------------------------------------
# Database invariants
# ----------------------------------------------------------------------


@given(rs_databases())
@settings(max_examples=60, deadline=None)
def test_delete_insert_roundtrip(db):
    facts = sorted(db.facts(), key=repr)
    if not facts:
        return
    target = facts[0]
    removed = db.delete([target])
    assert target not in removed
    restored = removed.insert([target])
    assert restored == db


@given(rs_databases(), rs_databases())
@settings(max_examples=60, deadline=None)
def test_symmetric_difference_symmetry(db1, db2):
    assert db1.symmetric_difference(db2) == db2.symmetric_difference(db1)
    assert db1.distance(db2) == db2.distance(db1)
    assert db1.distance(db1) == 0


@given(rs_databases())
@settings(max_examples=60, deadline=None)
def test_facts_are_set_semantics(db):
    assert len(db.facts()) == len(db)
    doubled = db.insert(db.facts())
    assert doubled == db


# ----------------------------------------------------------------------
# Repair invariants
# ----------------------------------------------------------------------


@given(rs_databases())
@settings(max_examples=40, deadline=None)
def test_srepairs_consistent_minimal_antichain(db):
    repairs = s_repairs(db, (KAPPA,))
    assert repairs  # deleting everything is always consistent
    for r in repairs:
        assert KAPPA.is_satisfied(r.instance)
        assert r.instance.issubset(db)
        assert is_s_repair(db, r.instance, (KAPPA,))
    for r1, r2 in itertools.combinations(repairs, 2):
        assert not (r1.diff < r2.diff) and not (r2.diff < r1.diff)


@given(rs_databases())
@settings(max_examples=40, deadline=None)
def test_srepair_engines_agree(db):
    via_graph = {r.diff for r in s_repairs(db, (KAPPA,), engine="hypergraph")}
    via_search = {r.diff for r in s_repairs(db, (KAPPA,), engine="search")}
    assert via_graph == via_search


@given(rs_databases())
@settings(max_examples=40, deadline=None)
def test_crepairs_are_minimum_srepairs(db):
    all_s = s_repairs(db, (KAPPA,))
    best = min(r.size for r in all_s)
    expected = {r.diff for r in all_s if r.size == best}
    assert {r.diff for r in c_repairs(db, (KAPPA,))} == expected


@given(rs_databases())
@settings(max_examples=40, deadline=None)
def test_count_matches_enumeration(db):
    assert count_s_repairs(db, (KAPPA,)) == len(s_repairs(db, (KAPPA,)))


@given(kv_databases())
@settings(max_examples=40, deadline=None)
def test_fd_closed_form_count(db):
    assert count_s_repairs(db, (FD,)) == len(s_repairs(db, (FD,)))


@given(rs_databases())
@settings(max_examples=40, deadline=None)
def test_consistent_core_inside_every_repair(db):
    graph = ConflictHypergraph.build(db, (KAPPA,))
    core = {db.fact_by_tid(t) for t in graph.conflict_free_tids()}
    for r in s_repairs(db, (KAPPA,)):
        assert core <= r.instance.facts()


# ----------------------------------------------------------------------
# CQA invariants
# ----------------------------------------------------------------------


@given(kv_databases())
@settings(max_examples=40, deadline=None)
def test_fm_rewriting_equals_enumeration_projection(db):
    if not len(db):
        return
    q = cq([X], [atom("R", X, Y)], name="keys")
    assert consistent_answers_fm(db, (FD,), q) == consistent_answers(
        db, (FD,), q
    )


@given(kv_databases())
@settings(max_examples=40, deadline=None)
def test_fm_rewriting_equals_enumeration_full(db):
    if not len(db):
        return
    q = cq([X, Y], [atom("R", X, Y)], name="full")
    assert consistent_answers_fm(db, (FD,), q) == consistent_answers(
        db, (FD,), q
    )


@given(kv_databases())
@settings(max_examples=40, deadline=None)
def test_certain_answers_hold_in_every_repair(db):
    if not len(db):
        return
    q = cq([X, Y], [atom("R", X, Y)], name="full")
    certain = consistent_answers(db, (FD,), q)
    for r in s_repairs(db, (FD,)):
        assert certain <= q.answers(r.instance)


# ----------------------------------------------------------------------
# Causality invariants
# ----------------------------------------------------------------------


@given(rs_databases())
@settings(max_examples=25, deadline=None)
def test_causes_match_direct_definition(db):
    from repro.causality import actual_causes, actual_causes_direct

    q = cq([], [atom("S", X), atom("R", X, Y), atom("S", Y)], name="Q")
    via_repairs = {
        c.fact: c.responsibility for c in actual_causes(db, q)
    }
    direct = {
        c.fact: c.responsibility for c in actual_causes_direct(db, q)
    }
    assert via_repairs == direct


@given(rs_databases())
@settings(max_examples=25, deadline=None)
def test_attribute_repairs_consistent_and_minimal(db):
    from repro.repairs import attribute_repairs

    repairs = attribute_repairs(db, (KAPPA,))
    for r in repairs:
        assert KAPPA.is_satisfied(r.instance)
    for r1, r2 in itertools.combinations(repairs, 2):
        assert not (r1.changes < r2.changes)
        assert not (r2.changes < r1.changes)


# ----------------------------------------------------------------------
# Hypergraph invariants
# ----------------------------------------------------------------------


@given(rs_databases())
@settings(max_examples=40, deadline=None)
def test_mis_are_complements_of_mhs(db):
    graph = ConflictHypergraph.build(db, (KAPPA,))
    mhs = graph.minimal_hitting_sets()
    mis = graph.maximal_independent_sets()
    assert {graph.nodes - h for h in mhs} == set(mis)
    for independent in mis:
        assert graph.is_independent(independent)


# ----------------------------------------------------------------------
# Similarity metric
# ----------------------------------------------------------------------

_WORDS = st.text(alphabet="abcde", max_size=8)


@given(_WORDS, _WORDS)
@settings(max_examples=80, deadline=None)
def test_edit_distance_symmetric(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)
    assert (edit_distance(a, b) == 0) == (a == b)


@given(_WORDS, _WORDS, _WORDS)
@settings(max_examples=80, deadline=None)
def test_edit_distance_triangle(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)
