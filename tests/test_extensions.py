"""Tests for the extension modules: prioritized repairs, probabilistic
clean answers, secrecy views, incremental repairs, consistency comparison."""

import pytest

from repro.constraints import DenialConstraint, FunctionalDependency
from repro.errors import QueryError, RepairError
from repro.logic import atom, cq, vars_
from repro.measures import more_consistent_than
from repro.privacy import (
    SecrecyView,
    secrecy_preserving_answers,
    view_is_hidden,
    virtual_secrecy_instances,
)
from repro.probabilistic import (
    DirtyDatabase,
    clean_answers,
    clean_answers_single_atom,
    world_probabilities,
)
from repro.relational import Database, RelationSchema, Schema, fact
from repro.repairs import (
    IncrementalRepairer,
    PriorityRelation,
    globally_optimal_repairs,
    pareto_optimal_repairs,
    prioritized_consistent_answers,
    s_repairs,
)
from repro.workloads import employee, random_rs_instance, rs_instance

X, Y = vars_("x y")


class TestPrioritizedRepairs:
    def setup_method(self):
        self.scenario = employee()
        self.fresh = fact("Employee", "page", "8K")
        self.stale = fact("Employee", "page", "5K")

    def test_priority_selects_one_repair(self):
        priority = PriorityRelation.from_pairs([(self.fresh, self.stale)])
        preferred = globally_optimal_repairs(
            self.scenario.db, self.scenario.constraints, priority
        )
        assert len(preferred) == 1
        assert self.fresh in preferred[0].instance
        assert self.stale not in preferred[0].instance

    def test_pareto_agrees_here(self):
        priority = PriorityRelation.from_pairs([(self.fresh, self.stale)])
        pareto = pareto_optimal_repairs(
            self.scenario.db, self.scenario.constraints, priority
        )
        assert len(pareto) == 1
        assert self.fresh in pareto[0].instance

    def test_empty_priority_keeps_all_srepairs(self):
        priority = PriorityRelation()
        assert len(globally_optimal_repairs(
            self.scenario.db, self.scenario.constraints, priority
        )) == 2
        assert len(pareto_optimal_repairs(
            self.scenario.db, self.scenario.constraints, priority
        )) == 2

    def test_prioritized_cqa(self):
        priority = PriorityRelation.from_pairs([(self.fresh, self.stale)])
        q = self.scenario.queries["Q1"]
        answers = prioritized_consistent_answers(
            self.scenario.db, self.scenario.constraints, priority, q
        )
        assert ("page", "8K") in answers
        assert ("page", "5K") not in answers

    def test_global_implies_pareto(self):
        # [103]: globally optimal repairs are Pareto optimal.
        for seed in range(4):
            scenario = random_rs_instance(5, 4, 4, seed=seed)
            facts = sorted(scenario.db.facts(), key=repr)
            priority = PriorityRelation.from_score(
                scenario.db, lambda f: len(repr(f)) % 3
            )
            global_diffs = {
                r.diff for r in globally_optimal_repairs(
                    scenario.db, scenario.constraints, priority
                )
            }
            pareto_diffs = {
                r.diff for r in pareto_optimal_repairs(
                    scenario.db, scenario.constraints, priority
                )
            }
            assert global_diffs <= pareto_diffs

    def test_cycle_rejected(self):
        a, b = fact("R", 1), fact("R", 2)
        with pytest.raises(RepairError):
            PriorityRelation.from_pairs([(a, b), (b, a)])
        with pytest.raises(RepairError):
            PriorityRelation.from_pairs([(a, a)])

    def test_from_score(self):
        scenario = employee()
        priority = PriorityRelation.from_score(
            scenario.db,
            lambda f: 1.0 if f.values[1] == "8K" else 0.0,
        )
        assert priority.dominates(self.fresh, self.stale)
        assert not priority.dominates(self.stale, self.fresh)

    def test_unknown_optimality(self):
        scenario = employee()
        with pytest.raises(ValueError):
            prioritized_consistent_answers(
                scenario.db, scenario.constraints, PriorityRelation(),
                scenario.queries["Q1"], optimality="best",
            )


class TestProbabilisticCleanAnswers:
    def setup_method(self):
        schema = Schema.of(
            RelationSchema("Emp", ("Name", "Salary"), key=("Name",)),
        )
        self.db = Database.from_dict(
            {
                "Emp": [
                    ("page", "5K"), ("page", "8K"),
                    ("smith", "3K"),
                ],
            },
            schema=schema,
        )
        self.key = FunctionalDependency("Emp", ("Name",), ("Salary",))

    def test_world_probabilities_sum_to_one(self):
        dirty = DirtyDatabase(self.db, self.key)
        worlds = world_probabilities(dirty)
        assert len(worlds) == 2
        assert sum(p for _, p in worlds) == pytest.approx(1.0)
        # Worlds are exactly the S-repairs.
        expected = {
            r.instance.facts() for r in s_repairs(self.db, (self.key,))
        }
        assert {w.facts() for w, _ in worlds} == expected

    def test_uniform_clean_answers(self):
        dirty = DirtyDatabase(self.db, self.key)
        q = cq([X, Y], [atom("Emp", X, Y)], name="all")
        probs = dict(clean_answers(dirty, q))
        assert probs[("smith", "3K")] == pytest.approx(1.0)
        assert probs[("page", "5K")] == pytest.approx(0.5)
        assert probs[("page", "8K")] == pytest.approx(0.5)

    def test_weights_shift_probabilities(self):
        dirty = DirtyDatabase(
            self.db, self.key,
            weights={fact("Emp", "page", "8K"): 3.0},
        )
        q = cq([X, Y], [atom("Emp", X, Y)], name="all")
        probs = dict(clean_answers(dirty, q))
        assert probs[("page", "8K")] == pytest.approx(0.75)
        assert probs[("page", "5K")] == pytest.approx(0.25)

    def test_threshold_recovers_certain(self):
        dirty = DirtyDatabase(self.db, self.key)
        q = cq([X], [atom("Emp", X, Y)], name="names")
        certain = {row for row, _ in clean_answers(dirty, q, threshold=1.0)}
        assert certain == {("page",), ("smith",)}

    def test_single_atom_shortcut_matches(self):
        dirty = DirtyDatabase(
            self.db, self.key,
            weights={fact("Emp", "page", "8K"): 3.0},
        )
        for head in ([X], [X, Y]):
            q = cq(head, [atom("Emp", X, Y)], name="q")
            exact = dict(clean_answers(dirty, q))
            fast = dict(clean_answers_single_atom(dirty, q))
            assert set(exact) == set(fast)
            for row in exact:
                assert exact[row] == pytest.approx(fast[row])

    def test_single_atom_rejects_joins(self):
        dirty = DirtyDatabase(self.db, self.key)
        q = cq([X], [atom("Emp", X, Y), atom("Emp", Y, X)], name="j")
        with pytest.raises(QueryError):
            clean_answers_single_atom(dirty, q)

    def test_invalid_weights_rejected(self):
        with pytest.raises(QueryError):
            DirtyDatabase(
                self.db, self.key,
                weights={fact("Emp", "page", "5K"): 0.0},
            )
        with pytest.raises(QueryError):
            DirtyDatabase(
                self.db, self.key,
                weights={fact("Emp", "ghost", "1K"): 1.0},
            )


class TestSecrecyViews:
    def setup_method(self):
        self.scenario = rs_instance()
        # Hide the join S(x), R(x,y), S(y) — the κ body as a secret.
        self.view = SecrecyView(self.scenario.queries["Q"], name="V")

    def test_view_leaks_initially(self):
        assert self.view.leaks(self.scenario.db)

    def test_virtual_instances_hide_view(self):
        hidden, offenders = view_is_hidden(self.scenario.db, (self.view,))
        assert hidden, offenders

    def test_only_changed_tuples_affected(self):
        # Updates never delete: every original tuple survives, except
        # that two tuples nulled into the same values merge (set
        # semantics).  Untouched facts must all be present verbatim.
        for virtual in virtual_secrecy_instances(
            self.scenario.db, (self.view,)
        ):
            changed_tids = {tid for tid, _ in virtual.changes}
            for tid, f in self.scenario.db.facts_with_tids().items():
                if tid not in changed_tids:
                    assert f in virtual.instance
            assert len(virtual.instance) >= (
                len(self.scenario.db) - len(virtual.changes)
            )

    def test_secrecy_preserving_answers(self):
        q = cq([X], [atom("S", X)], name="s_values")
        answers = secrecy_preserving_answers(
            self.scenario.db, (self.view,), q
        )
        # S(a2) is never involved in the secret join; it survives.
        assert ("a2",) in answers
        assert answers < q.answers(self.scenario.db)

    def test_unhideable_view_raises(self):
        db = Database.from_dict({"A": [(1,)]})
        (x,) = vars_("x")
        view = SecrecyView(cq([], [atom("A", x)]), name="all_of_A")
        with pytest.raises(QueryError):
            secrecy_preserving_answers(db, (view,), cq([x], [atom("A", x)]))

    def test_consistent_when_nothing_leaks(self):
        db = self.scenario.db.delete([fact("S", "a3"), fact("S", "a4")])
        q = cq([X], [atom("S", X)], name="s_values")
        answers = secrecy_preserving_answers(db, (self.view,), q)
        assert answers == q.answers(db)


class TestIncrementalRepairs:
    def setup_method(self):
        self.scenario = rs_instance()
        self.repairer = IncrementalRepairer(
            self.scenario.db, self.scenario.constraints
        )

    def test_initial_state_matches_batch(self):
        expected = {
            r.instance.facts()
            for r in s_repairs(self.scenario.db, self.scenario.constraints)
        }
        assert {
            r.instance.facts() for r in self.repairer.s_repairs()
        } == expected

    def test_delete_resolves_conflicts(self):
        self.repairer.delete([fact("S", "a3")])
        assert self.repairer.is_consistent()
        assert len(self.repairer.s_repairs()) == 1

    def test_insert_creates_conflicts(self):
        self.repairer.delete([fact("S", "a3")])
        self.repairer.insert([fact("S", "a1")])
        # S(a1) joins R(a2,a1) and S(a2): a new violation.
        assert not self.repairer.is_consistent()
        from repro.constraints import all_violations

        expected = {
            r.instance.facts()
            for r in s_repairs(
                self.repairer.database, self.scenario.constraints
            )
        }
        assert {
            r.instance.facts() for r in self.repairer.s_repairs()
        } == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_random_update_sequences_match_batch(self, seed):
        import random

        rng = random.Random(seed)
        scenario = random_rs_instance(4, 3, 3, seed=seed)
        repairer = IncrementalRepairer(scenario.db, scenario.constraints)
        pool = [
            fact("R", f"a{rng.randrange(3)}", f"a{rng.randrange(3)}")
            for _ in range(3)
        ] + [fact("S", f"a{rng.randrange(3)}") for _ in range(2)]
        for f in pool:
            if rng.random() < 0.5 and f in repairer.database:
                repairer.delete([f])
            else:
                repairer.insert([f])
        expected = {
            r.instance.facts()
            for r in s_repairs(repairer.database, scenario.constraints)
        }
        assert {
            r.instance.facts() for r in repairer.s_repairs()
        } == expected
        c_expected = {
            r.instance.facts()
            for r in __import__("repro.repairs", fromlist=["c_repairs"])
            .c_repairs(repairer.database, scenario.constraints)
        }
        assert {
            r.instance.facts() for r in repairer.c_repairs()
        } == c_expected

    def test_tgds_rejected(self):
        from repro.workloads import supply_articles

        scenario = supply_articles()
        with pytest.raises(RepairError):
            IncrementalRepairer(scenario.db, scenario.constraints)


class TestConsistencyComparison:
    def test_more_consistent_than(self):
        scenario = employee()
        repaired = scenario.db.delete([fact("Employee", "page", "8K")])
        assert more_consistent_than(
            repaired, scenario.db, scenario.constraints
        )
        assert not more_consistent_than(
            scenario.db, repaired, scenario.constraints
        )
        assert not more_consistent_than(
            scenario.db, scenario.db, scenario.constraints
        )
