"""Prometheus exposition edge cases.

The happy path (a seeded live plane's status parses line-by-line) lives
in ``tests/test_live.py``; this file pins down the grammar corners: the
``# HELP``/``# TYPE`` preamble contract, empty documents, name
sanitization, missing quantiles, and the non-numeric gauges that must
never leak into sample lines.
"""

import pytest

from repro.observability.live import (
    LivePlane,
    live,
    prometheus_text,
    validate_prometheus,
)
from repro.workloads import employee


def _status(**overrides):
    """A minimal hand-built status document (the exposition's input)."""
    status = {
        "uptime_s": 1.5,
        "counters": {
            "dispatch.requests": {
                "total": 20,
                "window": 5,
                "rate_per_s": 0.5,
            }
        },
        "histograms": {
            "dispatch.latency_ms": {
                "p50": 1.25,
                "p90": 2.5,
                "p99": 3.0,
                "sum": 40.0,
                "count": 20,
            }
        },
        "breakers": {"fm-sql": "closed"},
        "gauges": {"dispatch.inflight": 2},
        "requests": {"availability": 0.95},
    }
    status.update(overrides)
    return status


class TestHelpLines:
    def test_every_type_line_is_preceded_by_matching_help(self):
        lines = prometheus_text(_status()).splitlines()
        type_lines = [
            (i, line)
            for i, line in enumerate(lines)
            if line.startswith("# TYPE ")
        ]
        assert type_lines, "no metric families rendered at all"
        for i, line in enumerate(lines):
            if not line.startswith("# TYPE "):
                continue
            family = line.split()[2]
            previous = lines[i - 1]
            assert previous.startswith(f"# HELP {family} "), (
                f"{line!r} not preceded by its HELP line "
                f"(got {previous!r})"
            )

    def test_help_text_names_the_source_metric(self):
        text = prometheus_text(_status())
        assert (
            "# HELP repro_dispatch_requests_total "
            "Lifetime count of dispatch.requests." in text
        )
        assert (
            "# HELP repro_dispatch_latency_ms "
            "Rolling-window quantiles of dispatch.latency_ms" in text
        )

    def test_live_plane_status_renders_valid_help(self):
        scenario = employee()
        from repro.dispatch import Dispatcher

        with live() as plane:
            Dispatcher().dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q1"]
            )
            text = prometheus_text(plane.status())
        assert validate_prometheus(text) > 0
        assert text.count("# HELP") == text.count("# TYPE")

    def test_validator_rejects_malformed_comment(self):
        with pytest.raises(ValueError, match="malformed comment"):
            validate_prometheus("# HELPX repro_x broken\n")
        with pytest.raises(ValueError, match="malformed comment"):
            validate_prometheus("# HELP !bad name\n")


class TestExpositionEdgeCases:
    def test_empty_status_is_a_valid_empty_document(self):
        text = prometheus_text({})
        assert validate_prometheus(text) == 0

    def test_fresh_plane_exposes_only_uptime(self):
        text = prometheus_text(LivePlane().status())
        assert validate_prometheus(text) >= 1
        assert "repro_uptime_seconds" in text

    def test_missing_quantiles_are_omitted_not_nan(self):
        status = _status(
            histograms={
                "dispatch.latency_ms": {
                    "p50": None,
                    "p90": None,
                    "p99": None,
                    "sum": 0,
                    "count": 0,
                }
            }
        )
        text = prometheus_text(status)
        assert 'quantile="' not in text  # no quantile sample lines
        assert "repro_dispatch_latency_ms_sum 0" in text
        assert "repro_dispatch_latency_ms_count 0" in text
        validate_prometheus(text)

    def test_non_numeric_gauges_never_become_samples(self):
        status = _status(
            gauges={
                "dispatch.inflight": 2,
                "dispatch.breaker.state.fm-sql": "closed",  # string
                "dispatch.degraded": True,  # bool is not a number here
            }
        )
        text = prometheus_text(status)
        assert "repro_dispatch_inflight 2" in text
        assert "closed}" not in text.replace(
            'state="closed"', ""
        )  # only the breaker-state label carries the string
        assert "repro_dispatch_degraded" not in text
        validate_prometheus(text)

    def test_metric_names_are_sanitized(self):
        status = _status(
            counters={
                "weird metric-name!": {
                    "total": 1,
                    "window": 1,
                    "rate_per_s": 0.0,
                }
            }
        )
        text = prometheus_text(status)
        assert "repro_weird_metric_name__total 1" in text
        validate_prometheus(text)

    def test_counter_exposes_total_and_rate_companion(self):
        text = prometheus_text(_status())
        assert "# TYPE repro_dispatch_requests_total counter" in text
        assert "repro_dispatch_requests_total 20" in text
        assert "# TYPE repro_dispatch_requests_rate_per_s gauge" in text
        assert "repro_dispatch_requests_rate_per_s 0.5" in text

    def test_breaker_states_are_labelled_gauges(self):
        text = prometheus_text(
            _status(breakers={"fm-sql": "open", "asp": "closed"})
        )
        assert (
            'repro_dispatch_breaker_state{engine="asp",state="closed"} 1'
            in text
        )
        assert (
            'repro_dispatch_breaker_state{engine="fm-sql",state="open"} 1'
            in text
        )
        validate_prometheus(text)
