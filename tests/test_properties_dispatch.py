"""Property-based tests (hypothesis): the engines are interchangeable.

The dispatcher's fallback ladder is only sound if every engine answers
identically wherever its applicability check passes.  On random
FD-constrained instances (the ``random_fd_instance`` workload):

* **differential** — every applicable *exact* engine returns exactly
  the reference consistent answers (repair-set intersection);
* **dispatcher exactness** — whatever rung wins, ``complete=True``
  results equal the reference, under every repair semantics;
* **salvage soundness** — the certain-core rung brackets the reference
  from below (and from above via ``upper_bound``) even though it is
  never complete.
"""

from hypothesis import given, settings, strategies as st

from repro.cqa import consistent_answers
from repro.dispatch import (
    CQARequest,
    DispatchPolicy,
    applicable_engines,
    dispatch_cqa,
    get_engine,
)
from repro.workloads import random_fd_instance

# Small-instance strategy: up to 3 key groups of up to 3 values keeps
# the repair count <= 27, so the reference enumeration stays instant
# while still exercising every engine's conflict handling.
_PARAMS = st.tuples(
    st.integers(min_value=0, max_value=7),    # n_rows
    st.integers(min_value=1, max_value=3),    # n_keys
    st.integers(min_value=1, max_value=3),    # n_values
    st.integers(min_value=0, max_value=50),   # seed
)

_QUERY_NAMES = st.sampled_from(["all", "keys"])

_SEMANTICS = st.sampled_from(["s", "c", "delete-only"])


@settings(max_examples=40, deadline=None)
@given(_PARAMS, _QUERY_NAMES)
def test_applicable_engines_agree(params, qname):
    scenario = random_fd_instance(*params)
    query = scenario.queries[qname]
    ref = consistent_answers(scenario.db, scenario.constraints, query)
    request = CQARequest(scenario.db, scenario.constraints, query)
    for name in applicable_engines(request):
        engine = get_engine(name)
        answer = engine.run(request)
        if engine.exact:
            assert answer.complete
            assert answer.answers == ref, (
                f"engine {name} disagrees with the reference "
                f"enumeration on {scenario.name}/{qname}"
            )
        else:
            assert answer.answers <= ref
            upper = answer.detail.get("upper_bound")
            if upper is not None:
                assert ref <= upper


@settings(max_examples=40, deadline=None)
@given(_PARAMS, _QUERY_NAMES, _SEMANTICS)
def test_dispatcher_complete_answers_are_exact(params, qname, semantics):
    scenario = random_fd_instance(*params)
    query = scenario.queries[qname]
    # Key FDs: every repair keeps one tuple per key group, so all three
    # semantics coincide and share one reference.
    ref = consistent_answers(scenario.db, scenario.constraints, query)
    result = dispatch_cqa(
        scenario.db, scenario.constraints, query, semantics=semantics
    )
    assert result.complete
    assert result.answers == ref
    assert result.provenance.engine is not None


@settings(max_examples=25, deadline=None)
@given(_PARAMS, _QUERY_NAMES)
def test_salvage_rung_is_always_sound(params, qname):
    scenario = random_fd_instance(*params)
    query = scenario.queries[qname]
    ref = consistent_answers(scenario.db, scenario.constraints, query)
    result = dispatch_cqa(
        scenario.db, scenario.constraints, query,
        policy=DispatchPolicy(ladder=("certain-core",)),
    )
    assert not result.complete
    assert result.answers <= ref
    upper = result.detail.get("upper_bound")
    assert upper is not None and ref <= upper
