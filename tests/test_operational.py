"""Tests for the operational approach to CQA ([36])."""

import pytest

from repro.cqa import consistent_answers
from repro.cqa.operational import (
    estimate_answer_probabilities,
    operational_answer_probabilities,
    operational_certain_answers,
    operational_repair_distribution,
    sample_operational_repair,
)
from repro.errors import RepairError
from repro.logic import atom, cq, vars_
from repro.repairs import is_s_repair, s_repairs
from repro.workloads import employee, random_rs_instance, rs_instance

X, Y = vars_("x y")


class TestDistribution:
    def test_probabilities_sum_to_one(self):
        scenario = rs_instance()
        distribution = operational_repair_distribution(
            scenario.db, scenario.constraints
        )
        assert sum(p for _, p in distribution) == pytest.approx(1.0)

    def test_leaves_contain_all_srepairs(self):
        # Every S-repair is an outcome; additionally some non-minimal
        # consistent instances can be reached (a justified deletion may
        # be subsumed by a later one) — faithful to [36].
        scenario = rs_instance()
        distribution = operational_repair_distribution(
            scenario.db, scenario.constraints
        )
        leaves = {instance.facts() for instance, _ in distribution}
        srepair_sets = {
            r.instance.facts()
            for r in s_repairs(scenario.db, scenario.constraints)
        }
        assert srepair_sets <= leaves
        from repro.constraints import all_satisfied

        for instance, _ in distribution:
            assert all_satisfied(instance, scenario.constraints)
            assert any(
                instance.facts() <= s for s in srepair_sets
            )

    def test_consistent_instance_trivial_distribution(self):
        scenario = employee()
        from repro.relational import fact

        db = scenario.db.delete([fact("Employee", "page", "8K")])
        distribution = operational_repair_distribution(
            db, scenario.constraints
        )
        assert len(distribution) == 1
        assert distribution[0][1] == pytest.approx(1.0)

    def test_distribution_not_uniform_in_general(self):
        # In the R/S instance, S(a3) participates in both violations, so
        # the single-deletion repair is reached more often than 1/3.
        scenario = rs_instance()
        distribution = operational_repair_distribution(
            scenario.db, scenario.constraints
        )
        probabilities = sorted(p for _, p in distribution)
        assert len(set(round(p, 9) for p in probabilities)) > 1

    def test_tgds_rejected(self):
        from repro.workloads import supply_articles

        scenario = supply_articles()
        with pytest.raises(RepairError):
            operational_repair_distribution(
                scenario.db, scenario.constraints
            )


class TestOperationalAnswers:
    def test_certain_sound_wrt_classical(self):
        for scenario in (employee(), rs_instance()):
            q = (
                scenario.queries.get("Q1")
                or cq([X], [atom("S", X)], name="s")
            )
            classical = consistent_answers(
                scenario.db, scenario.constraints, q
            )
            operational = operational_certain_answers(
                scenario.db, scenario.constraints, q
            )
            assert operational <= classical

    @pytest.mark.parametrize("seed", range(3))
    def test_certain_sound_wrt_classical_random(self, seed):
        scenario = random_rs_instance(4, 3, 3, seed=seed)
        q = cq([X], [atom("S", X)], name="s_values")
        classical = consistent_answers(scenario.db, scenario.constraints, q)
        operational = operational_certain_answers(
            scenario.db, scenario.constraints, q
        )
        assert operational <= classical

    def test_graded_answers_in_unit_interval(self):
        scenario = employee()
        q = scenario.queries["Q1"]
        for row, p in operational_answer_probabilities(
            scenario.db, scenario.constraints, q
        ):
            assert 0.0 < p <= 1.0

    def test_threshold_monotone(self):
        scenario = employee()
        q = scenario.queries["Q1"]
        strict = operational_certain_answers(
            scenario.db, scenario.constraints, q, threshold=1.0
        )
        loose = operational_certain_answers(
            scenario.db, scenario.constraints, q, threshold=0.4
        )
        assert strict <= loose


class TestSampling:
    def test_sample_is_consistent_subinstance(self):
        from repro.constraints import all_satisfied

        scenario = rs_instance()
        for seed in range(5):
            repair = sample_operational_repair(
                scenario.db, scenario.constraints, seed=seed
            )
            assert all_satisfied(repair, scenario.constraints)
            assert repair.issubset(scenario.db)

    def test_estimates_near_exact(self):
        scenario = employee()
        q = scenario.queries["Q1"]
        exact = dict(operational_answer_probabilities(
            scenario.db, scenario.constraints, q
        ))
        estimated = estimate_answer_probabilities(
            scenario.db, scenario.constraints, q, samples=400, seed=1
        )
        assert set(estimated) <= set(exact)
        for row, p in exact.items():
            assert estimated.get(row, 0.0) == pytest.approx(p, abs=0.1)
