"""Tests for spatial shrink-repairs under disjointness constraints."""

import pytest

from repro.errors import ConstraintError
from repro.relational import Database, RelationSchema, Schema, fact
from repro.spatial import (
    SpatialDisjointness,
    c_spatial_repairs,
    is_interval,
    overlap_length,
    spatial_repairs,
)

SCHEMA = Schema.of(
    RelationSchema("Parcel", ("Owner", "Extent")),
)
DISJOINT = SpatialDisjointness("Parcel", "Extent", name="no_overlap")


def _db(rows):
    return Database.from_dict({"Parcel": rows}, schema=SCHEMA)


class TestPrimitives:
    def test_is_interval(self):
        assert is_interval((0.0, 2.0))
        assert is_interval((0, 2))
        assert not is_interval((2, 0))
        assert not is_interval((1, 1))
        assert not is_interval("nope")

    def test_overlap_length(self):
        assert overlap_length((0, 2), (1, 3)) == 1
        assert overlap_length((0, 1), (1, 2)) == 0  # touching is fine
        assert overlap_length((0, 5), (1, 2)) == 1


class TestViolations:
    def test_detects_overlap(self):
        db = _db([("ann", (0.0, 2.0)), ("bob", (1.0, 3.0))])
        violations = DISJOINT.violations(db)
        assert len(violations) == 1
        assert violations[0][2] == pytest.approx(1.0)
        assert not DISJOINT.is_satisfied(db)

    def test_touching_is_consistent(self):
        db = _db([("ann", (0.0, 1.0)), ("bob", (1.0, 2.0))])
        assert DISJOINT.is_satisfied(db)

    def test_group_by(self):
        schema = Schema.of(
            RelationSchema("Parcel", ("Zone", "Extent")),
        )
        db = Database.from_dict(
            {"Parcel": [("z1", (0.0, 2.0)), ("z2", (1.0, 3.0))]},
            schema=schema,
        )
        grouped = SpatialDisjointness("Parcel", "Extent", group_by="Zone")
        assert grouped.is_satisfied(db)

    def test_bad_geometry_rejected(self):
        db = _db([("ann", "not-an-interval")])
        with pytest.raises(ConstraintError):
            DISJOINT.violations(db)


class TestRepairs:
    def test_simple_overlap_two_repairs(self):
        db = _db([("ann", (0.0, 2.0)), ("bob", (1.0, 3.0))])
        repairs = spatial_repairs(db, DISJOINT)
        assert len(repairs) == 2
        for r in repairs:
            assert DISJOINT.is_satisfied(r.instance)
            assert r.removed_length == pytest.approx(1.0)
        new_extents = {
            new for r in repairs for _, _, new in r.shrunk
        }
        assert (0.0, 1.0) in new_extents  # ann pulled back
        assert (2.0, 3.0) in new_extents  # bob pushed forward

    def test_containment_can_delete(self):
        # bob's parcel lies strictly inside ann's: shrinking bob away
        # deletes it; shrinking ann keeps a left piece.
        db = _db([("ann", (0.0, 10.0)), ("bob", (4.0, 6.0))])
        repairs = spatial_repairs(db, DISJOINT)
        assert any(
            fact("Parcel", "bob", (4.0, 6.0)) in r.deleted
            for r in repairs
        )
        for r in repairs:
            assert DISJOINT.is_satisfied(r.instance)

    def test_c_repairs_minimize_removed_length(self):
        db = _db([("ann", (0.0, 10.0)), ("bob", (9.0, 12.0))])
        best = c_spatial_repairs(db, DISJOINT)
        # Overlap length 1: both one-sided shrinks remove exactly 1.
        assert all(
            r.removed_length == pytest.approx(1.0) for r in best
        )
        assert len(best) == len(spatial_repairs(db, DISJOINT)) == 2

    def test_chain_of_three(self):
        db = _db([
            ("a", (0.0, 3.0)), ("b", (2.0, 5.0)), ("c", (4.0, 7.0)),
        ])
        repairs = spatial_repairs(db, DISJOINT)
        assert repairs
        for r in repairs:
            assert DISJOINT.is_satisfied(r.instance)
        # Fixing both overlaps independently: minimum removes 2.
        best = c_spatial_repairs(db, DISJOINT)
        assert best[0].removed_length == pytest.approx(2.0)

    def test_changed_tid_sets_minimal(self):
        import itertools

        db = _db([("ann", (0.0, 2.0)), ("bob", (1.0, 3.0)),
                  ("eve", (10.0, 11.0))])
        repairs = spatial_repairs(db, DISJOINT)
        for r in repairs:
            # The disjoint parcel is never touched.
            assert db.tid_of(fact("Parcel", "eve", (10.0, 11.0))) \
                not in r.changed_tids
        for r1, r2 in itertools.combinations(repairs, 2):
            assert not (r1.changed_tids < r2.changed_tids)

    def test_consistent_instance_single_noop(self):
        db = _db([("ann", (0.0, 1.0)), ("bob", (2.0, 3.0))])
        repairs = spatial_repairs(db, DISJOINT)
        assert len(repairs) == 1
        assert repairs[0].removed_length == 0.0
