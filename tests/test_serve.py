"""The serving layer: admission control, handlers, HTTP, and soundness.

The end-to-end test runs a real server (real pool, real sockets, real
load generator) and is the slowest test here; everything else drives
the layers directly — the handlers are plain functions returning
``(status, body, headers)`` precisely so they can be tested without a
socket in sight.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.dispatch import DispatchPolicy, PoolConfig, WorkerPool
from repro.serve import (
    AdmissionController,
    CQAHTTPServer,
    CQAService,
    LoadReport,
    ServerConfig,
    ShedError,
    TenantPolicy,
    run_closed_loop,
)
from repro.serve.loadgen import _classify


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


#: Examples 3.3/3.4 as a wire-format database spec: the key constraint
#: Name → Salary is violated by the two page tuples.
EMPLOYEE_SPEC = {
    "relations": {
        "Employee": {
            "columns": ["Name", "Salary"],
            "key": ["Name"],
            "rows": [
                ["page", "5K"],
                ["page", "8K"],
                ["smith", "3K"],
                ["stowe", "7K"],
            ],
        }
    },
    "constraints": {"fd": ["Employee: Name -> Salary"]},
}

#: Certain answers to Q(X) :- Employee(X, Y) on that instance.
CERTAIN_NAMES = [["page"], ["smith"], ["stowe"]]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestAdmission:
    def test_clamp_timeout(self):
        c = AdmissionController(
            TenantPolicy(default_timeout_s=5.0, max_timeout_s=30.0)
        )
        assert c.clamp_timeout(None) == 5.0
        assert c.clamp_timeout(7.0) == 7.0
        assert c.clamp_timeout(1000.0) == 30.0
        assert c.clamp_timeout(-3.0) == pytest.approx(0.001)

    def test_finish_releases_the_slot(self):
        c = AdmissionController(TenantPolicy(max_concurrent=1))
        ticket = c.admit("t", timeout_s=1.0)
        assert c.stats()["t"]["inflight"] == 1
        ticket.finish("ok", elapsed_s=0.01)
        assert c.stats()["t"]["inflight"] == 0
        c.admit("t", timeout_s=1.0).finish("ok", 0.01)  # slot is free

    def test_finish_is_idempotent(self):
        c = AdmissionController(TenantPolicy(max_concurrent=1))
        ticket = c.admit("t", timeout_s=1.0)
        ticket.finish("ok", 0.01)
        ticket.finish("ok", 0.01)  # must not double-release
        assert c.stats()["t"]["inflight"] == 0

    def test_queue_full_sheds_immediately(self):
        c = AdmissionController(
            TenantPolicy(max_concurrent=1, max_queue=0)
        )
        ticket = c.admit("t", timeout_s=5.0)
        with pytest.raises(ShedError) as exc_info:
            c.admit("t", timeout_s=5.0)
        assert exc_info.value.reason == "queue-full"
        assert exc_info.value.status == 429
        ticket.finish("ok", 0.01)

    def test_quota_exhausted_until_window_rolls(self):
        clock = FakeClock()
        c = AdmissionController(
            TenantPolicy(quota_requests=2, quota_window_s=60.0),
            clock=clock,
        )
        for _ in range(2):
            c.admit("t", timeout_s=1.0).finish("ok", 0.01)
        with pytest.raises(ShedError) as exc_info:
            c.admit("t", timeout_s=1.0)
        assert exc_info.value.reason == "quota-exhausted"
        # Retry-After points at the window boundary, not a guess.
        assert 0.0 < exc_info.value.retry_after_s <= 60.0
        clock.advance(60.0)
        c.admit("t", timeout_s=1.0).finish("ok", 0.01)  # fresh window

    def test_quota_is_per_tenant(self):
        clock = FakeClock()
        c = AdmissionController(
            TenantPolicy(quota_requests=1, quota_window_s=60.0),
            clock=clock,
        )
        c.admit("a", timeout_s=1.0).finish("ok", 0.01)
        with pytest.raises(ShedError):
            c.admit("a", timeout_s=1.0)
        c.admit("b", timeout_s=1.0).finish("ok", 0.01)  # b unaffected

    def test_erroring_tenant_is_cut_off_with_503(self):
        clock = FakeClock()
        c = AdmissionController(
            TenantPolicy(failure_threshold=2, cooldown_s=5.0),
            clock=clock,
        )
        for _ in range(2):
            c.admit("t", timeout_s=1.0).finish("error", 0.01)
        with pytest.raises(ShedError) as exc_info:
            c.admit("t", timeout_s=1.0)
        assert exc_info.value.reason == "tenant-breaker-open"
        assert exc_info.value.status == 503
        # After the cooldown the probe is admitted again.
        clock.advance(5.0)
        c.admit("t", timeout_s=1.0).finish("ok", 0.01)
        c.admit("t", timeout_s=1.0).finish("ok", 0.01)

    def test_sheds_do_not_count_against_the_tenant_breaker(self):
        c = AdmissionController(
            TenantPolicy(
                max_concurrent=1, max_queue=0, failure_threshold=1
            )
        )
        ticket = c.admit("t", timeout_s=1.0)
        for _ in range(3):  # shedding is the controller working
            with pytest.raises(ShedError):
                c.admit("t", timeout_s=1.0)
        ticket.finish("ok", 0.01)
        c.admit("t", timeout_s=1.0).finish("ok", 0.01)  # still admitted

    def test_deadline_unreachable_sheds_before_queueing(self):
        c = AdmissionController(TenantPolicy(max_concurrent=1))
        ticket = c.admit("t", timeout_s=5.0)
        state = c._tenant("t")  # noqa: SLF001 — seed the EWMA
        state.ewma_s = 10.0
        with pytest.raises(ShedError) as exc_info:
            c.admit("t", timeout_s=0.5)
        assert exc_info.value.reason == "deadline-unreachable"
        assert exc_info.value.retry_after_s >= 10.0
        ticket.finish("ok", 0.01)

    def test_fresh_tenant_is_never_shed_on_a_guess(self):
        # EWMA seeds at zero: with no history, deadline-unreachable
        # cannot fire no matter how short the timeout.
        c = AdmissionController(TenantPolicy(max_concurrent=4))
        c.admit("t", timeout_s=0.001).finish("ok", 0.0005)

    def test_queue_timeout_sheds_after_the_deadline(self):
        c = AdmissionController(
            TenantPolicy(max_concurrent=1, max_queue=4)
        )
        ticket = c.admit("t", timeout_s=5.0)
        started = time.monotonic()
        with pytest.raises(ShedError) as exc_info:
            c.admit("t", timeout_s=0.2)
        waited = time.monotonic() - started
        assert exc_info.value.reason == "queue-timeout"
        assert 0.15 <= waited < 2.0
        ticket.finish("ok", 0.01)

    def test_waiter_is_woken_when_a_slot_frees(self):
        c = AdmissionController(
            TenantPolicy(max_concurrent=1, max_queue=4)
        )
        first = c.admit("t", timeout_s=5.0)
        admitted = threading.Event()

        def waiter():
            c.admit("t", timeout_s=5.0).finish("ok", 0.01)
            admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)  # let the waiter reach cond.wait
        assert not admitted.is_set()
        first.finish("ok", 0.01)
        thread.join(timeout=5.0)
        assert admitted.is_set()


# ----------------------------------------------------------------------
# Service handlers (no pool, no sockets)
# ----------------------------------------------------------------------


class TestServiceHandlers:
    def test_register_list_query_remove_cycle(self):
        svc = CQAService()
        status, body, _ = svc.register_db("emp", EMPLOYEE_SPEC)
        assert status == 200
        assert body == {"db": "emp", "facts": 4, "constraints": 1}
        status, body, _ = svc.list_dbs()
        assert body["databases"]["emp"]["facts"] == 4
        status, body, _ = svc.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 200
        assert body["complete"] and body["outcome"] == "ok"
        assert body["answers"] == CERTAIN_NAMES
        status, _, _ = svc.remove_db("emp")
        assert status == 200
        status, body, _ = svc.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 400

    def test_inline_instance_is_one_shot(self):
        svc = CQAService()
        payload = dict(EMPLOYEE_SPEC)
        payload["query"] = "Q(X, Y) :- Employee(X, Y)"
        status, body, _ = svc.handle_cqa(payload)
        assert status == 200
        assert body["answers"] == [["smith", "3K"], ["stowe", "7K"]]
        assert svc.list_dbs()[1]["databases"] == {}  # nothing persisted

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ({}, "relations"),
            ({"relations": {"R": []}}, "must be an object"),
            ({"relations": {"R": {"rows": []}}}, "columns"),
            (
                {
                    "relations": {
                        "R": {"columns": ["a", "b"], "rows": [["x"]]}
                    }
                },
                "2 values",
            ),
        ],
    )
    def test_bad_database_specs_are_400(self, spec, fragment):
        svc = CQAService()
        status, body, _ = svc.register_db("bad", spec)
        assert status == 400
        assert fragment in body["error"]

    def test_invalid_database_name_is_400(self):
        svc = CQAService()
        assert svc.register_db("", EMPLOYEE_SPEC)[0] == 400
        assert svc.register_db("a/b", EMPLOYEE_SPEC)[0] == 400

    def test_bad_query_is_400_not_500(self):
        svc = CQAService()
        svc.register_db("emp", EMPLOYEE_SPEC)
        status, body, _ = svc.handle_cqa(
            {"db": "emp", "query": "not a query"}
        )
        assert status == 400 and "request_id" in body
        status, _, _ = svc.handle_cqa({"db": "emp", "query": 42})
        assert status == 400

    def test_repairs_endpoint_with_limit(self):
        svc = CQAService()
        svc.register_db("emp", EMPLOYEE_SPEC)
        status, body, _ = svc.handle_repairs(
            {"db": "emp", "semantics": "s"}
        )
        assert status == 200 and body["complete"]
        # Two S-repairs: keep page/5K or keep page/8K.
        assert len(body["repairs"]) == 2
        deleted = sorted(
            repair["deleted"][0] for repair in body["repairs"]
        )
        assert deleted == [
            ["Employee", "page", "5K"],
            ["Employee", "page", "8K"],
        ]
        status, body, _ = svc.handle_repairs(
            {"db": "emp", "semantics": "s", "limit": 1}
        )
        assert status == 200
        assert len(body["repairs"]) == 1 and not body["complete"]
        assert body["outcome"] == "degraded"

    def test_repairs_validation(self):
        svc = CQAService()
        svc.register_db("emp", EMPLOYEE_SPEC)
        assert (
            svc.handle_repairs({"db": "emp", "semantics": "x"})[0] == 400
        )
        assert (
            svc.handle_repairs({"db": "emp", "limit": 0})[0] == 400
        )
        assert (
            svc.handle_repairs({"db": "emp", "limit": "many"})[0] == 400
        )

    def test_inconsistency_report(self):
        svc = CQAService()
        svc.register_db("emp", EMPLOYEE_SPEC)
        status, body, _ = svc.handle_report("emp")
        assert status == 200
        assert body["size"] == 4
        assert body["repair_distance"] == 1  # drop one page tuple
        assert svc.handle_report("nope")[0] == 404

    def test_shed_response_shape(self):
        svc = CQAService(
            admission=AdmissionController(
                TenantPolicy(quota_requests=0, quota_window_s=60.0)
            )
        )
        svc.register_db("emp", EMPLOYEE_SPEC)
        status, body, headers = svc.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 429
        assert body["error"] == "shed"
        assert body["reason"] == "quota-exhausted"
        assert isinstance(body["retry_after_s"], float)
        assert "Retry-After" in headers

    def test_health_without_pool(self):
        status, body, _ = CQAService().health()
        assert status == 200 and body["status"] == "ok"


# ----------------------------------------------------------------------
# The degrade path: saturated pool → sound certain-core answers
# ----------------------------------------------------------------------


class _SaturatedPool:
    """Quacks like a WorkerPool with every worker busy."""

    def idle_count(self):
        return 0

    def drain(self, timeout_s=None):
        pass

    def stats(self):
        return {"workers": 2, "idle": 0, "draining": False}


class TestDegradeOnSaturation:
    def test_degraded_answers_are_a_sound_subset(self):
        svc = CQAService(
            policy=DispatchPolicy(isolate=("fm-sql",)),
            pool=_SaturatedPool(),
        )
        svc.register_db("emp", EMPLOYEE_SPEC)
        status, body, _ = svc.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 200
        assert body["outcome"] == "degraded"
        assert body["complete"] is False
        assert body["engine"] == "certain-core"
        assert body["degraded_reason"] == "pool-saturated"
        # The soundness contract: never a wrong tuple, only fewer.
        certain = {tuple(row) for row in CERTAIN_NAMES}
        assert {tuple(row) for row in body["answers"]} <= certain

    def test_no_degrade_when_isolation_is_off(self):
        # A saturated pool only matters for rungs that would use it.
        svc = CQAService(
            policy=DispatchPolicy(isolate=()), pool=_SaturatedPool()
        )
        svc.register_db("emp", EMPLOYEE_SPEC)
        status, body, _ = svc.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 200
        assert body["complete"] and body["outcome"] == "ok"
        assert body["answers"] == CERTAIN_NAMES


# ----------------------------------------------------------------------
# Load-generator response classification
# ----------------------------------------------------------------------


class TestLoadgenClassify:
    def _report(self):
        return LoadReport()

    def _ok_body(self, answers, complete):
        return {"answers": answers, "complete": complete}

    def test_exact_answer_counts_ok(self):
        report = self._report()
        _classify(
            200, {}, self._ok_body(CERTAIN_NAMES, True),
            CERTAIN_NAMES, report,
        )
        assert report.ok == 1 and report.sound

    def test_wrong_complete_answer_is_unsound(self):
        report = self._report()
        _classify(
            200, {}, self._ok_body([["page"]], True),
            CERTAIN_NAMES, report,
        )
        assert report.wrong == 1 and not report.sound

    def test_degraded_subset_is_sound(self):
        report = self._report()
        _classify(
            200, {}, self._ok_body([["page"]], False),
            CERTAIN_NAMES, report,
        )
        assert report.degraded == 1 and report.sound

    def test_degraded_superset_is_unsound(self):
        report = self._report()
        _classify(
            200,
            {},
            self._ok_body(CERTAIN_NAMES + [["intruder"]], False),
            CERTAIN_NAMES,
            report,
        )
        assert report.wrong == 1 and not report.sound

    def test_well_formed_shed(self):
        report = self._report()
        _classify(
            429,
            {"retry-after": "1"},
            {"error": "shed", "reason": "queue-full",
             "retry_after_s": 0.5},
            CERTAIN_NAMES,
            report,
        )
        assert report.shed == 1 and report.sound

    def test_malformed_shed_fails_the_gate(self):
        report = self._report()
        _classify(429, {}, {"error": "overloaded"}, None, report)
        assert report.malformed == 1 and not report.sound

    def test_missing_answers_key_is_malformed(self):
        report = self._report()
        _classify(200, {}, {"status": "fine"}, None, report)
        assert report.malformed == 1 and not report.sound


# ----------------------------------------------------------------------
# End to end: real pool, real sockets, real load
# ----------------------------------------------------------------------


class _ServerHarness:
    """Runs a CQAHTTPServer on a private event-loop thread."""

    def __init__(self, service, config):
        self.server = CQAHTTPServer(service, config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )

    def __enter__(self):
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=30.0)
        self._serving = asyncio.run_coroutine_threadsafe(
            self.server.serve_forever(), self.loop
        )
        return self.server

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(timeout=60.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.loop.close()

    def request(self, method, path, payload=None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.server.port, timeout=30.0
        )
        try:
            body = (
                json.dumps(payload).encode() if payload is not None
                else None
            )
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"}
                if body
                else {},
            )
            response = conn.getresponse()
            raw = response.read()
            parsed = json.loads(raw) if raw and raw[:1] in (b"{", b"[") \
                else raw.decode("utf-8", "replace")
            return response.status, parsed
        finally:
            conn.close()


def _pid_alive(pid):
    try:
        with open(f"/proc/{pid}/stat") as fh:
            return fh.read().split(") ", 1)[1][0] != "Z"
    except OSError:
        return False


class TestEndToEnd:
    def test_serve_under_concurrency_is_sound_and_leak_free(self):
        pool = WorkerPool(PoolConfig(size=1)).start()
        pids = pool.stats()["pids"]
        service = CQAService(
            policy=DispatchPolicy(isolate=("fm-sql",)),
            pool=pool,
            admission=AdmissionController(
                TenantPolicy(max_concurrent=4, max_queue=8)
            ),
        )
        harness = _ServerHarness(
            service, ServerConfig(port=0, max_inflight=6)
        )
        with harness as server:
            status, body = harness.request(
                "PUT", "/v1/db/emp", EMPLOYEE_SPEC
            )
            assert status == 200 and body["facts"] == 4
            status, body = harness.request("GET", "/healthz")
            assert status == 200 and body["status"] == "ok"
            status, body = harness.request("GET", "/v1/db/emp/report")
            assert status == 200 and body["repair_distance"] == 1
            status, text = harness.request("GET", "/metrics")
            assert status == 200 and isinstance(text, str)
            status, body = harness.request("GET", "/nope")
            assert status == 404
            report = run_closed_loop(
                "127.0.0.1",
                server.port,
                {
                    "db": "emp",
                    "query": "Q(X) :- Employee(X, Y)",
                    "timeout_s": 20.0,
                },
                total=12,
                concurrency=3,
                expect=CERTAIN_NAMES,
            )
            # Soundness under contention: every 200 is exact or an
            # explicit subset; sheds (if any) are well-formed.
            assert report.sound, report.render()
            assert report.transport_errors == 0
            assert report.ok + report.degraded + report.shed == 12
            assert report.ok >= 1
            status, body = harness.request("DELETE", "/v1/db/emp")
            assert status == 200
            status, body = harness.request(
                "POST",
                "/v1/cqa",
                {"db": "emp", "query": "Q(X) :- Employee(X, Y)"},
            )
            assert status == 400
        # Graceful stop drained the pool: no worker survives.
        for pid in pids:
            assert not _pid_alive(pid)
        assert pool.stats()["workers"] == 0
