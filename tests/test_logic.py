"""Tests for the FO logic substrate: formulas, evaluation, queries."""

import pytest

from repro.errors import QueryError
from repro.logic import (
    And,
    Atom,
    Comparison,
    Exists,
    Forall,
    IsNull,
    Not,
    Or,
    Query,
    atom,
    boolean_query,
    cq,
    eq,
    evaluate,
    neq,
    satisfying_bindings,
    unify_atoms,
    vars_,
    witnesses,
)
from repro.logic.substitution import apply_to_formula, match_atom, rename_apart
from repro.relational import NULL, Database, LabeledNull

X, Y, Z = vars_("x y z")


@pytest.fixture
def supply_db():
    return Database.from_dict({
        "Supply": [("C1", "R1", "I1"), ("C2", "R2", "I2"), ("C2", "R1", "I3")],
        "Articles": [("I1",), ("I2",)],
    })


class TestConjunctiveQueries:
    def test_projection_query(self, supply_db):
        # Q(z): exists x exists y Supply(x, y, z)  — query (2) in the paper.
        q = cq([Z], [atom("Supply", X, Y, Z)])
        assert q.answers(supply_db) == {("I1",), ("I2",), ("I3",)}

    def test_rewritten_query(self, supply_db):
        # Q'(z): exists x exists y (Supply(x,y,z) & Articles(z)) — query (4).
        q = cq([Z], [atom("Supply", X, Y, Z), atom("Articles", Z)])
        assert q.answers(supply_db) == {("I1",), ("I2",)}

    def test_boolean_query(self, supply_db):
        q = boolean_query([atom("Articles", "I1")])
        assert q.holds(supply_db)
        q2 = boolean_query([atom("Articles", "I9")])
        assert not q2.holds(supply_db)

    def test_join_query(self):
        db = Database.from_dict({
            "R": [(1, 2), (2, 3)],
            "S": [(2,), (3,)],
        })
        q = cq([X, Y], [atom("R", X, Y), atom("S", Y)])
        assert q.answers(db) == {(1, 2), (2, 3)}

    def test_comparison_filter(self):
        db = Database.from_dict({"R": [(1, 2), (2, 2)]})
        q = cq([X, Y], [atom("R", X, Y)], [neq(X, Y)])
        assert q.answers(db) == {(1, 2)}

    def test_constants_in_atoms(self, supply_db):
        q = cq([Z], [atom("Supply", "C2", Y, Z)])
        assert q.answers(supply_db) == {("I2",), ("I3",)}

    def test_self_join_detection(self):
        q = cq([X], [atom("R", X, Y), atom("R", Y, X)])
        assert q.has_self_join()
        q2 = cq([X], [atom("R", X, Y), atom("S", Y)])
        assert not q2.has_self_join()

    def test_instantiate(self):
        q = cq([X], [atom("R", X, Y)])
        b = q.instantiate((1,))
        assert b.is_boolean
        assert b.atoms[0] == atom("R", 1, Y)

    def test_instantiate_arity_check(self):
        q = cq([X], [atom("R", X, Y)])
        with pytest.raises(QueryError):
            q.instantiate((1, 2))

    def test_head_var_must_occur(self):
        with pytest.raises(QueryError):
            cq([Z], [atom("R", X, Y)])

    def test_repeated_variable_in_atom(self):
        db = Database.from_dict({"R": [(1, 1), (1, 2)]})
        q = cq([X], [atom("R", X, X)])
        assert q.answers(db) == {(1,)}


class TestNullSemantics:
    def test_null_never_joins(self):
        db = Database.from_dict({"R": [(NULL, 1)], "S": [(NULL,)]})
        q = boolean_query([atom("R", X, Y), atom("S", X)])
        assert not q.holds(db)

    def test_null_not_equal_to_itself_within_atom(self):
        db = Database.from_dict({"R": [(NULL, NULL)]})
        q = boolean_query([atom("R", X, X)])
        assert not q.holds(db)

    def test_null_can_be_selected(self):
        db = Database.from_dict({"R": [(1, NULL)]})
        q = cq([X, Y], [atom("R", X, Y)])
        assert q.answers(db) == {(1, NULL)}

    def test_constant_pattern_never_matches_null(self):
        db = Database.from_dict({"R": [(NULL,)]})
        assert not boolean_query([atom("R", 1)]).holds(db)
        assert not boolean_query([atom("R", NULL)]).holds(db)

    def test_comparisons_with_null_false(self):
        db = Database.from_dict({"R": [(NULL, 2)]})
        assert not boolean_query([atom("R", X, Y)], [eq(X, Y)]).holds(db)
        assert not boolean_query([atom("R", X, Y)], [neq(X, Y)]).holds(db)

    def test_isnull_observes_null(self):
        db = Database.from_dict({"R": [(NULL,), (1,)]})
        q = Query((X,), And((atom("R", X), Not(IsNull(X)))))
        assert q.answers(db) == {(1,)}
        sat = satisfying_bindings(db, And((atom("R", X), IsNull(X))))
        assert len(sat) == 1

    def test_labeled_nulls_do_join(self):
        n = LabeledNull("n1")
        db = Database.from_dict({"R": [(n, 1)], "S": [(n,)]})
        q = boolean_query([atom("R", X, Y), atom("S", X)])
        assert q.holds(db)

    def test_certain_rows_filters_labeled_nulls(self):
        n = LabeledNull("n1")
        db = Database.from_dict({"R": [(n,), (1,)]})
        q = cq([X], [atom("R", X)]).to_query()
        assert q.certain_rows(db) == {(1,)}


class TestFirstOrderEvaluation:
    def test_negation(self, supply_db):
        # Items supplied but not listed in Articles.
        body = And((
            atom("Supply", X, Y, Z),
            Not(atom("Articles", Z)),
        ))
        q = Query((Z,), body)
        assert q.answers(supply_db) == {("I3",)}

    def test_not_exists_rewriting_shape(self):
        # Example 3.4: Employee(x, y) & not exists z (Employee(x, z) & z != y)
        db = Database.from_dict({
            "Employee": [("page", "5K"), ("page", "8K"),
                         ("smith", "3K"), ("stowe", "7K")],
        })
        body = And((
            atom("Employee", X, Y),
            Not(Exists((Z,), And((atom("Employee", X, Z), neq(Z, Y))))),
        ))
        q = Query((X, Y), body)
        assert q.answers(db) == {("smith", "3K"), ("stowe", "7K")}

    def test_forall(self):
        db = Database.from_dict({"R": [(1,), (2,)], "S": [(1,), (2,), (3,)]})
        # forall x (R(x) -> S(x))  ==  not exists x (R(x) & not S(x))
        sentence = Forall((X,), Or((Not(atom("R", X)), atom("S", X))))
        assert evaluate(db, sentence)
        sentence2 = Forall((X,), Or((Not(atom("S", X)), atom("R", X))))
        assert not evaluate(db, sentence2)

    def test_union(self):
        db = Database.from_dict({"R": [(1,)], "S": [(2,)]})
        q = Query((X,), Or((atom("R", X), atom("S", X))))
        assert q.answers(db) == {(1,), (2,)}

    def test_quantifier_scoping(self):
        db = Database.from_dict({"R": [(1, 2)], "S": [(2,)]})
        # exists y (R(x, y))  with outer x — y is scoped inside.
        body = And((atom("S", Y), Exists((Y,), atom("R", X, Y))))
        q = Query((X, Y), body)
        assert q.answers(db) == {(1, 2)}

    def test_unsafe_query_raises(self):
        db = Database.from_dict({"R": [(1,)]})
        q = Query((X, Y), Or((atom("R", X), atom("R", Y))))
        with pytest.raises(QueryError):
            q.answers(db)

    def test_active_domain_fallback_for_comparison(self):
        db = Database.from_dict({"R": [(1,), (2,), (3,)]})
        # x < 3 with x unbound first: active-domain enumeration kicks in.
        body = And((Comparison("<", X, 3), atom("R", X)))
        q = Query((X,), body)
        assert q.answers(db) == {(1,), (2,)}

    def test_witnesses(self, supply_db):
        results = witnesses(
            supply_db, [atom("Supply", X, Y, Z), atom("Articles", Z)]
        )
        assert len(results) == 2
        for binding, facts in results:
            assert len(facts) == 2
            assert facts[0].relation == "Supply"

    def test_witnesses_with_conditions(self):
        db = Database.from_dict({"R": [(1, 2), (1, 1)]})
        results = witnesses(db, [atom("R", X, Y)], [neq(X, Y)])
        assert len(results) == 1

    def test_incomparable_types_dont_crash(self):
        db = Database.from_dict({"R": [(1, "a")]})
        q = boolean_query([atom("R", X, Y)], [Comparison("<", X, Y)])
        assert not q.holds(db)


class TestSubstitution:
    def test_unify_atoms(self):
        s = unify_atoms(atom("R", X, Y), atom("R", 1, Z))
        assert s is not None
        assert s[X] == 1

    def test_unify_mismatch(self):
        assert unify_atoms(atom("R", 1), atom("R", 2)) is None
        assert unify_atoms(atom("R", X), atom("S", X)) is None

    def test_unify_repeated_var(self):
        s = unify_atoms(atom("R", X, X), atom("R", 1, Y))
        assert s is not None
        # x -> 1 and y -> 1 transitively.
        from repro.logic.substitution import apply_to_term
        assert apply_to_term(Y, s) == 1

    def test_match_atom(self):
        assert match_atom(atom("R", X, X), atom("R", 1, 1)) == {X: 1}
        assert match_atom(atom("R", X, X), atom("R", 1, 2)) is None

    def test_rename_apart(self):
        f = And((atom("R", X, Y),))
        renamed, renaming = rename_apart(f, [X])
        assert X in renaming
        assert renaming[X].name != "x"
        assert Y not in renaming

    def test_apply_to_formula_shields_quantified(self):
        f = Exists((X,), atom("R", X, Y))
        applied = apply_to_formula(f, {X: 1, Y: 2})
        assert applied == Exists((X,), atom("R", X, 2))
