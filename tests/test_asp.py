"""Tests for the ASP engine: grounding, stable models, repair programs."""

import pytest

from repro.asp import (
    AspProgram,
    AspRule,
    RepairProgram,
    Solver,
    WeakConstraint,
    asp_fact,
    asp_rule,
    ground_program,
    primed,
    program,
    solve,
)
from repro.errors import GroundingError, SolverError
from repro.logic import Comparison, atom, cq, neq, vars_
from repro.relational import fact
from repro.repairs import c_repairs, s_repairs
from repro.workloads import (
    abcde_instance,
    employee,
    random_rs_instance,
    rs_instance,
    supply_articles,
)

X, Y, Z = vars_("x y z")


def _answer_atoms(answer_sets, predicate):
    return [
        {a.terms for a in s.with_predicate(predicate)} for s in answer_sets
    ]


class TestStableModelBasics:
    def test_facts_only(self):
        p = program([asp_fact(atom("p", 1)), asp_fact(atom("q", 2))])
        sets = solve(p)
        assert len(sets) == 1
        assert atom("p", 1) in sets[0]
        assert atom("q", 2) in sets[0]

    def test_positive_rule(self):
        p = program([
            asp_fact(atom("p", 1)),
            asp_rule([atom("q", X)], [atom("p", X)]),
        ])
        (s,) = solve(p)
        assert atom("q", 1) in s

    def test_even_loop_two_models(self):
        # a :- not b.  b :- not a.
        p = program([
            asp_fact(atom("seed")),
            asp_rule([atom("a")], [atom("seed")], [atom("b")]),
            asp_rule([atom("b")], [atom("seed")], [atom("a")]),
        ])
        sets = solve(p)
        assert len(sets) == 2
        truths = {frozenset({"a", "b"} & {a.predicate for a in s.atoms})
                  for s in sets}
        assert truths == {frozenset({"a"}), frozenset({"b"})}

    def test_odd_loop_no_model(self):
        # a :- not a.  (with a seed so 'a' is possible)
        p = program([
            asp_fact(atom("seed")),
            asp_rule([atom("a")], [atom("seed")], [atom("a")]),
        ])
        assert solve(p) == []

    def test_unsupported_atom_not_derived(self):
        # q is never derivable; "not q" is simplified to true.
        p = program([
            asp_fact(atom("p")),
            asp_rule([atom("r")], [atom("p")], [atom("q")]),
        ])
        (s,) = solve(p)
        assert atom("r") in s

    def test_disjunctive_minimality(self):
        # a | b.  — two stable models {a}, {b}, never {a, b}.
        p = program([
            asp_fact(atom("seed")),
            asp_rule([atom("a"), atom("b")], [atom("seed")]),
        ])
        sets = solve(p)
        names = sorted(
            sorted(x.predicate for x in s.atoms if x.predicate != "seed")
            for s in sets
        )
        assert names == [["a"], ["b"]]

    def test_disjunction_with_support(self):
        # a | b.  a :- b.  — {a} is the only stable model: {b} is not
        # a model of the reduct (a :- b forces a), {a,b} not minimal.
        p = program([
            asp_fact(atom("seed")),
            asp_rule([atom("a"), atom("b")], [atom("seed")]),
            asp_rule([atom("a")], [atom("b")]),
        ])
        sets = solve(p)
        assert len(sets) == 1
        assert atom("a") in sets[0]
        assert atom("b") not in sets[0]

    def test_hard_constraint(self):
        p = program([
            asp_fact(atom("seed")),
            asp_rule([atom("a"), atom("b")], [atom("seed")]),
            asp_rule([], [atom("a")]),  # :- a.
        ])
        sets = solve(p)
        assert len(sets) == 1
        assert atom("b") in sets[0]

    def test_builtin_comparison(self):
        p = program([
            asp_fact(atom("p", 1)),
            asp_fact(atom("p", 5)),
            asp_rule(
                [atom("big", X)], [atom("p", X)],
                builtins=[Comparison(">", X, 3)],
            ),
        ])
        (s,) = solve(p)
        assert s.with_predicate("big") == (atom("big", 5),)

    def test_recursion(self):
        p = program([
            asp_fact(atom("edge", 1, 2)),
            asp_fact(atom("edge", 2, 3)),
            asp_rule([atom("path", X, Y)], [atom("edge", X, Y)]),
            asp_rule(
                [atom("path", X, Z)],
                [atom("edge", X, Y), atom("path", Y, Z)],
            ),
        ])
        (s,) = solve(p)
        assert atom("path", 1, 3) in s

    def test_unsafe_rule_rejected(self):
        with pytest.raises(GroundingError):
            asp_rule([atom("p", X)], [atom("q", Y)])

    def test_unsafe_negation_rejected(self):
        with pytest.raises(GroundingError):
            asp_rule([atom("p", X)], [atom("q", X)], [atom("r", Y)])

    def test_stable_models_are_antichain(self):
        p = program([
            asp_fact(atom("seed")),
            asp_rule([atom("a"), atom("b")], [atom("seed")]),
            asp_rule([atom("c")], [atom("seed")], [atom("a")]),
        ])
        sets = solve(p)
        for s1 in sets:
            for s2 in sets:
                if s1 is not s2:
                    assert not (s1.atoms < s2.atoms)

    def test_weak_constraints_pick_minimum(self):
        p = AspProgram(
            (
                asp_fact(atom("seed")),
                asp_rule([atom("a"), atom("b")], [atom("seed")]),
                asp_rule([atom("b2")], [atom("b")]),
            ),
            (
                WeakConstraint((atom("b2"),)),
            ),
        )
        solver = Solver(p)
        assert len(solver.answer_sets()) == 2
        optimal = solver.optimal_answer_sets()
        assert len(optimal) == 1
        assert atom("a") in optimal[0]

    def test_weak_constraint_levels(self):
        p = AspProgram(
            (
                asp_fact(atom("seed")),
                asp_rule([atom("a"), atom("b")], [atom("seed")]),
            ),
            (
                # 'a' violates heavily at the low level; 'b' violates
                # lightly at the high level.  Levels dominate: pick 'a'.
                WeakConstraint((atom("a"),), weight=10, level=1),
                WeakConstraint((atom("b"),), weight=1, level=2),
            ),
        )
        optimal = Solver(p).optimal_answer_sets()
        assert len(optimal) == 1
        assert atom("a") in optimal[0]

    def test_brave_and_cautious(self):
        p = program([
            asp_fact(atom("seed")),
            asp_rule([atom("a"), atom("b")], [atom("seed")]),
            asp_rule([atom("c")], [atom("seed")]),
        ])
        solver = Solver(p)
        assert solver.brave(atom("a")) == {()}
        assert solver.cautious(atom("a")) == set()
        assert solver.cautious(atom("c")) == {()}


class TestRepairProgramExample35:
    """Example 3.5: the repair program for κ has three stable models."""

    def setup_method(self):
        self.scenario = rs_instance()
        self.rp = RepairProgram(self.scenario.db, self.scenario.constraints)

    def test_three_answer_sets(self):
        assert len(self.rp.answer_sets()) == 3

    def test_models_match_paper_repairs(self):
        repaired = {r.instance.facts() for r in self.rp.repairs()}
        d1 = frozenset({
            fact("R", "a4", "a3"), fact("R", "a2", "a1"),
            fact("R", "a3", "a3"), fact("S", "a4"), fact("S", "a2"),
        })
        d2 = frozenset({
            fact("R", "a2", "a1"), fact("S", "a4"), fact("S", "a2"),
            fact("S", "a3"),
        })
        d3 = frozenset({
            fact("R", "a4", "a3"), fact("R", "a2", "a1"),
            fact("S", "a2"), fact("S", "a3"),
        })
        assert repaired == {d1, d2, d3}

    def test_m1_annotations(self):
        # M1 keeps everything but S(ι6; a3), annotated d.
        sets = self.rp.answer_sets()
        m1 = next(
            s for s in sets
            if atom(primed("S"), "t6", "a3", "d") in s
        )
        assert atom(primed("R"), "t1", "a4", "a3", "s") in m1
        assert atom(primed("S"), "t4", "a4", "s") in m1

    def test_agrees_with_direct_enumeration(self):
        direct = {
            r.instance.facts()
            for r in s_repairs(self.scenario.db, self.scenario.constraints)
        }
        via_asp = {r.instance.facts() for r in self.rp.repairs()}
        assert via_asp == direct


class TestRepairProgramExample42:
    """Example 4.2: weak constraints select the C-repairs."""

    def test_c_repairs_via_weak_constraints(self):
        scenario = abcde_instance()
        rp = RepairProgram(
            scenario.db, scenario.constraints,
            include_weak_constraints=True,
        )
        assert len(rp.answer_sets()) == 4
        via_asp = {r.instance.facts() for r in rp.c_repairs()}
        direct = {
            r.instance.facts()
            for r in c_repairs(scenario.db, scenario.constraints)
        }
        assert via_asp == direct
        assert len(via_asp) == 3

    def test_c_repairs_requires_flag(self):
        scenario = abcde_instance()
        rp = RepairProgram(scenario.db, scenario.constraints)
        with pytest.raises(SolverError):
            rp.c_repairs()


class TestRepairProgramCQA:
    def test_cqa_on_employee(self):
        scenario = employee()
        rp = RepairProgram(scenario.db, scenario.constraints)
        q1 = scenario.queries["Q1"]
        assert rp.consistent_answers(q1) == {
            ("smith", "3K"), ("stowe", "7K"),
        }
        q2 = scenario.queries["Q2"]
        assert rp.consistent_answers(q2) == {
            ("smith",), ("stowe",), ("page",),
        }

    def test_brave_answers(self):
        scenario = employee()
        rp = RepairProgram(scenario.db, scenario.constraints)
        q1 = scenario.queries["Q1"]
        brave = rp.possible_answers(q1)
        assert ("page", "5K") in brave
        assert ("page", "8K") in brave

    def test_tgds_rejected(self):
        scenario = supply_articles()
        with pytest.raises(SolverError):
            RepairProgram(scenario.db, scenario.constraints)

    @pytest.mark.parametrize("seed", range(5))
    def test_differential_random_instances(self, seed):
        scenario = random_rs_instance(5, 4, 4, seed=seed)
        rp = RepairProgram(scenario.db, scenario.constraints)
        via_asp = {r.instance.facts() for r in rp.repairs()}
        direct = {
            r.instance.facts()
            for r in s_repairs(scenario.db, scenario.constraints)
        }
        assert via_asp == direct

    def test_fd_repair_program(self):
        scenario = employee()
        rp = RepairProgram(scenario.db, scenario.constraints)
        assert len(rp.answer_sets()) == 2


class TestConsExSlicing:
    """Magic-set-style relevance slicing (ConsEx [43])."""

    def _wide_scenario(self):
        from repro.constraints import FunctionalDependency
        from repro.relational import Database, RelationSchema, Schema

        schema = Schema.of(
            RelationSchema("Employee", ("Name", "Salary"), key=("Name",)),
            RelationSchema("Rooms", ("Room", "Floor"), key=("Room",)),
            RelationSchema("Log", ("Entry",)),
        )
        db = Database.from_dict(
            {
                "Employee": [("page", "5K"), ("page", "8K"),
                             ("smith", "3K")],
                "Rooms": [("r1", 1), ("r1", 2), ("r2", 1)],
                "Log": [("boot",), ("halt",)],
            },
            schema=schema,
        )
        constraints = (
            FunctionalDependency("Employee", ("Name",), ("Salary",),
                                 name="empKey"),
            FunctionalDependency("Rooms", ("Room",), ("Floor",),
                                 name="roomKey"),
        )
        return db, constraints

    def test_relevant_relations_closure(self):
        from repro.asp import relevant_relations
        from repro.logic import atom, cq, vars_

        db, constraints = self._wide_scenario()
        x, y = vars_("x y")
        q = cq([x], [atom("Employee", x, y)], name="names")
        assert relevant_relations(q, constraints, db) == {"Employee"}

    def test_sliced_answers_match_full(self):
        from repro.logic import atom, cq, vars_

        db, constraints = self._wide_scenario()
        x, y = vars_("x y")
        q = cq([x, y], [atom("Employee", x, y)], name="rows")
        rp = RepairProgram(db, constraints)
        full = rp.consistent_answers(q)
        sliced = rp.consistent_answers(q, optimize=True)
        assert sliced == full == {("smith", "3K")}

    def test_slice_is_smaller(self):
        from repro.logic import atom, cq, vars_

        db, constraints = self._wide_scenario()
        x, y = vars_("x y")
        q = cq([x], [atom("Employee", x, y)], name="names")
        rp = RepairProgram(db, constraints)
        sliced = rp.restricted_to_query(q)
        assert len(sliced.db) < len(db)
        assert len(sliced.constraints) == 1
        # Fewer stable models: the Rooms conflict no longer multiplies.
        assert len(sliced.answer_sets()) < len(rp.answer_sets())
