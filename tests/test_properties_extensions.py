"""Property-based tests (hypothesis) for the extension modules."""

from hypothesis import given, settings, strategies as st

from repro.constraints import ConflictHypergraph, DenialConstraint, FunctionalDependency
from repro.cqa import (
    AggregateQuery,
    fd_range_count_star,
    fd_range_max,
    fd_range_min,
    fd_range_sum,
    range_consistent_answer,
)
from repro.logic import atom, cq, vars_
from repro.probabilistic import (
    DirtyDatabase,
    clean_answers,
    clean_answers_single_atom,
    world_probabilities,
)
from repro.relational import Database, RelationSchema, Schema
from repro.repairs import (
    IncrementalRepairer,
    PriorityRelation,
    globally_optimal_repairs,
    pareto_optimal_repairs,
    s_repairs,
)

X, Y = vars_("x y")

_KV_SCHEMA = Schema.of(RelationSchema("R", ("K", "V"), key=("K",)))
FD = FunctionalDependency("R", ("K",), ("V",), name="key")


@st.composite
def numeric_kv_databases(draw):
    rows = draw(st.lists(
        st.tuples(
            st.sampled_from(["k0", "k1", "k2"]),
            st.integers(min_value=-20, max_value=20),
        ),
        min_size=1, max_size=7, unique=True,
    ))
    return Database.from_dict({"R": rows}, schema=_KV_SCHEMA)


@given(numeric_kv_databases())
@settings(max_examples=40, deadline=None)
def test_aggregate_closed_forms_match_enumeration(db):
    pairs = [
        (fd_range_sum(db, FD, "V"),
         range_consistent_answer(db, (FD,), AggregateQuery("R", "sum", "V"))),
        (fd_range_count_star(db, FD),
         range_consistent_answer(db, (FD,), AggregateQuery("R", "count"))),
        (fd_range_min(db, FD, "V"),
         range_consistent_answer(db, (FD,), AggregateQuery("R", "min", "V"))),
        (fd_range_max(db, FD, "V"),
         range_consistent_answer(db, (FD,), AggregateQuery("R", "max", "V"))),
    ]
    for fast, exact in pairs:
        assert (fast.glb, fast.lub) == (exact.glb, exact.lub)


@given(numeric_kv_databases())
@settings(max_examples=40, deadline=None)
def test_aggregate_range_brackets_every_repair(db):
    for function, attribute in (("sum", "V"), ("min", "V"), ("max", "V")):
        query = AggregateQuery("R", function, attribute)
        bracket = range_consistent_answer(db, (FD,), query)
        for r in s_repairs(db, (FD,)):
            value = query.evaluate(r.instance)
            if value is not None:
                assert bracket.glb <= value <= bracket.lub


@given(numeric_kv_databases())
@settings(max_examples=30, deadline=None)
def test_world_probabilities_sum_to_one(db):
    dirty = DirtyDatabase(db, FD)
    worlds = world_probabilities(dirty)
    assert abs(sum(p for _, p in worlds) - 1.0) < 1e-9
    srepair_sets = {
        r.instance.facts() for r in s_repairs(db, (FD,))
    }
    assert {w.facts() for w, _ in worlds} == srepair_sets


@given(numeric_kv_databases())
@settings(max_examples=30, deadline=None)
def test_clean_answer_paths_agree(db):
    dirty = DirtyDatabase(db, FD)
    q = cq([X, Y], [atom("R", X, Y)], name="rows")
    exact = dict(clean_answers(dirty, q))
    fast = dict(clean_answers_single_atom(dirty, q))
    assert set(exact) == set(fast)
    for row in exact:
        assert abs(exact[row] - fast[row]) < 1e-9


@given(numeric_kv_databases())
@settings(max_examples=30, deadline=None)
def test_certain_answers_have_probability_one(db):
    from repro.cqa import consistent_answers

    dirty = DirtyDatabase(db, FD)
    q = cq([X, Y], [atom("R", X, Y)], name="rows")
    certain = consistent_answers(db, (FD,), q)
    probs = dict(clean_answers(dirty, q))
    for row in certain:
        assert abs(probs[row] - 1.0) < 1e-9


@given(numeric_kv_databases())
@settings(max_examples=25, deadline=None)
def test_preferred_repair_containments(db):
    priority = PriorityRelation.from_score(
        db, lambda f: float(f.values[1])
    )
    s_diffs = {r.diff for r in s_repairs(db, (FD,))}
    pareto = {r.diff for r in pareto_optimal_repairs(db, (FD,), priority)}
    global_ = {
        r.diff for r in globally_optimal_repairs(db, (FD,), priority)
    }
    assert global_ <= pareto <= s_diffs
    assert global_  # some repair is always preferred


@given(
    numeric_kv_databases(),
    st.lists(
        st.tuples(
            st.sampled_from(["k0", "k1", "k3"]),
            st.integers(min_value=-5, max_value=5),
        ),
        min_size=1, max_size=4,
    ),
)
@settings(max_examples=25, deadline=None)
def test_incremental_matches_batch(db, updates):
    from repro.relational import Fact

    repairer = IncrementalRepairer(db, (FD,))
    for key, value in updates:
        f = Fact("R", (key, value))
        if f in repairer.database:
            repairer.delete([f])
        else:
            repairer.insert([f])
    expected = ConflictHypergraph.build(repairer.database, (FD,))
    assert repairer.graph.edges == expected.edges
    assert {r.instance.facts() for r in repairer.s_repairs()} == {
        r.instance.facts()
        for r in s_repairs(repairer.database, (FD,))
    }
