"""Tests for aggregate CQA under the range semantics (Section 3.2, [5])."""

import pytest

from repro.constraints import FunctionalDependency
from repro.cqa import (
    AggregateQuery,
    fd_range_count_star,
    fd_range_max,
    fd_range_min,
    fd_range_sum,
    range_consistent_answer,
)
from repro.errors import QueryError
from repro.relational import Database, RelationSchema, Schema
from repro.workloads import random_fd_instance

SCHEMA = Schema.of(
    RelationSchema("Salaries", ("Name", "Amount"), key=("Name",)),
)
FD = FunctionalDependency("Salaries", ("Name",), ("Amount",), name="key")


def _db(rows):
    return Database.from_dict({"Salaries": rows}, schema=SCHEMA)


class TestAggregateQuery:
    def test_evaluate_on_consistent(self):
        db = _db([("a", 10), ("b", 20)])
        assert AggregateQuery("Salaries", "sum", "Amount").evaluate(db) == 30
        assert AggregateQuery("Salaries", "count").evaluate(db) == 2
        assert AggregateQuery("Salaries", "min", "Amount").evaluate(db) == 10
        assert AggregateQuery("Salaries", "max", "Amount").evaluate(db) == 20
        assert AggregateQuery("Salaries", "avg", "Amount").evaluate(db) == 15

    def test_validation(self):
        with pytest.raises(QueryError):
            AggregateQuery("Salaries", "median", "Amount")
        with pytest.raises(QueryError):
            AggregateQuery("Salaries", "sum")

    def test_empty_relation(self):
        db = _db([])
        assert AggregateQuery("Salaries", "sum", "Amount").evaluate(db) is None
        assert AggregateQuery("Salaries", "count").evaluate(db) == 0.0


class TestRangeSemantics:
    def setup_method(self):
        # 'a' has two candidate salaries, 'b' one.
        self.db = _db([("a", 10), ("a", 50), ("b", 20)])

    def test_sum_range(self):
        r = range_consistent_answer(
            self.db, (FD,), AggregateQuery("Salaries", "sum", "Amount")
        )
        assert (r.glb, r.lub) == (30.0, 70.0)
        assert 50 in r and 80 not in r
        assert not r.is_point

    def test_count_star_point(self):
        r = range_consistent_answer(
            self.db, (FD,), AggregateQuery("Salaries", "count")
        )
        assert r.is_point and r.glb == 2.0

    def test_min_max_ranges(self):
        r_min = range_consistent_answer(
            self.db, (FD,), AggregateQuery("Salaries", "min", "Amount")
        )
        assert (r_min.glb, r_min.lub) == (10.0, 20.0)
        r_max = range_consistent_answer(
            self.db, (FD,), AggregateQuery("Salaries", "max", "Amount")
        )
        assert (r_max.glb, r_max.lub) == (20.0, 50.0)

    def test_consistent_instance_point_range(self):
        db = _db([("a", 10), ("b", 20)])
        r = range_consistent_answer(
            db, (FD,), AggregateQuery("Salaries", "sum", "Amount")
        )
        assert r.is_point and r.glb == 30.0


class TestClosedForms:
    def _check_all(self, db):
        sum_fast = fd_range_sum(db, FD, "Amount")
        sum_exact = range_consistent_answer(
            db, (FD,), AggregateQuery("Salaries", "sum", "Amount")
        )
        assert (sum_fast.glb, sum_fast.lub) == (sum_exact.glb, sum_exact.lub)

        cnt_fast = fd_range_count_star(db, FD)
        cnt_exact = range_consistent_answer(
            db, (FD,), AggregateQuery("Salaries", "count")
        )
        assert (cnt_fast.glb, cnt_fast.lub) == (cnt_exact.glb, cnt_exact.lub)

        min_fast = fd_range_min(db, FD, "Amount")
        min_exact = range_consistent_answer(
            db, (FD,), AggregateQuery("Salaries", "min", "Amount")
        )
        assert (min_fast.glb, min_fast.lub) == (min_exact.glb, min_exact.lub)

        max_fast = fd_range_max(db, FD, "Amount")
        max_exact = range_consistent_answer(
            db, (FD,), AggregateQuery("Salaries", "max", "Amount")
        )
        assert (max_fast.glb, max_fast.lub) == (max_exact.glb, max_exact.lub)

    def test_paper_style_instance(self):
        self._check_all(_db([("a", 10), ("a", 50), ("b", 20), ("c", 5)]))

    def test_multiple_conflicting_groups(self):
        self._check_all(_db([
            ("a", 10), ("a", 50),
            ("b", 20), ("b", 1), ("b", 7),
            ("c", 5),
        ]))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_differential(self, seed):
        import random

        rng = random.Random(seed)
        rows = set()
        for _ in range(8):
            rows.add((f"k{rng.randrange(4)}", rng.randrange(1, 40)))
        self._check_all(_db(sorted(rows)))

    def test_count_star_formula(self):
        # group 'a': classes of size 1 and 1 -> count contributes 1
        # group 'b': one class of size 1.
        db = _db([("a", 10), ("a", 50), ("b", 20)])
        r = fd_range_count_star(db, FD)
        assert (r.glb, r.lub) == (2.0, 2.0)

    def test_count_star_with_wide_schema(self):
        schema = Schema.of(
            RelationSchema("R", ("K", "V", "W"), key=("K",)),
        )
        db = Database.from_dict(
            {"R": [("a", 1, "x"), ("a", 1, "y"), ("b", 2, "z")]},
            schema=schema,
        )
        fd = FunctionalDependency("R", ("K",), ("V",), name="fd")
        # Group 'a' has one rhs class {1} holding two tuples: repairs keep
        # both, so the count is constant 3.
        r = fd_range_count_star(db, fd)
        exact = range_consistent_answer(
            db, (fd,), AggregateQuery("R", "count")
        )
        assert (r.glb, r.lub) == (exact.glb, exact.lub) == (3.0, 3.0)
