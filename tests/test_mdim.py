"""Tests for multidimensional dimensions and their repairs."""

import itertools

import pytest

from repro.errors import ConstraintError, RepairError
from repro.mdim import Dimension, c_dimension_repairs, dimension_repairs


def location_dimension(rollup):
    return Dimension(
        categories={
            "City": frozenset({"stgo", "conce"}),
            "Region": frozenset({"rm", "biobio"}),
            "Country": frozenset({"chile"}),
        },
        hierarchy=frozenset({
            ("City", "Region"), ("Region", "Country"),
        }),
        rollup=frozenset(rollup),
    )


CLEAN = [
    ("stgo", "rm"), ("conce", "biobio"),
    ("rm", "chile"), ("biobio", "chile"),
]


class TestDimensionModel:
    def test_clean_dimension_summarizable(self):
        dim = location_dimension(CLEAN)
        assert dim.is_strict()
        assert dim.is_covering()
        assert dim.is_summarizable()

    def test_ancestors(self):
        dim = location_dimension(CLEAN)
        ancestors = dim.ancestors("stgo")
        assert ancestors == {"Region": {"rm"}, "Country": {"chile"}}

    def test_strictness_violation_detected(self):
        dim = location_dimension(CLEAN + [("stgo", "biobio")])
        assert not dim.is_strict()
        violations = dim.strictness_violations()
        assert ("stgo", "Region", frozenset({"rm", "biobio"})) in violations

    def test_covering_violation_detected(self):
        dim = location_dimension([
            ("stgo", "rm"), ("rm", "chile"), ("biobio", "chile"),
        ])
        assert not dim.is_covering()
        assert ("conce", "Region") in dim.covering_violations()

    def test_duplicate_member_rejected(self):
        with pytest.raises(ConstraintError):
            Dimension(
                categories={
                    "A": frozenset({"x"}), "B": frozenset({"x"}),
                },
                hierarchy=frozenset({("A", "B")}),
                rollup=frozenset(),
            )

    def test_cyclic_hierarchy_rejected(self):
        with pytest.raises(ConstraintError):
            Dimension(
                categories={
                    "A": frozenset({"a"}), "B": frozenset({"b"}),
                },
                hierarchy=frozenset({("A", "B"), ("B", "A")}),
                rollup=frozenset(),
            )

    def test_edge_must_follow_hierarchy(self):
        with pytest.raises(ConstraintError):
            location_dimension(CLEAN + [("stgo", "chile")])


class TestDimensionRepairs:
    def test_double_parent_two_repairs(self):
        dim = location_dimension(CLEAN + [("stgo", "biobio")])
        repairs = dimension_repairs(dim)
        assert len(repairs) == 2
        diffs = {r.diff for r in repairs}
        assert frozenset({("stgo", "rm")}) in diffs
        assert frozenset({("stgo", "biobio")}) in diffs
        for r in repairs:
            assert r.repaired.is_summarizable()

    def test_covering_repair_inserts(self):
        dim = location_dimension([
            ("stgo", "rm"), ("rm", "chile"), ("biobio", "chile"),
        ])
        repairs = dimension_repairs(dim)
        assert len(repairs) == 2  # conce -> rm or conce -> biobio
        for r in repairs:
            assert r.repaired.is_summarizable()
            assert len(r.inserted_edges) == 1
            (edge,) = r.inserted_edges
            assert edge[0] == "conce"

    def test_indirect_nonstrictness(self):
        # A bigger instance: stores roll up to cities and to brands;
        # both reach Company, disagreeing — the classic indirect case.
        dim = Dimension(
            categories={
                "Store": frozenset({"s1"}),
                "City": frozenset({"c1"}),
                "Brand": frozenset({"b1"}),
                "Company": frozenset({"k1", "k2"}),
            },
            hierarchy=frozenset({
                ("Store", "City"), ("Store", "Brand"),
                ("City", "Company"), ("Brand", "Company"),
            }),
            rollup=frozenset({
                ("s1", "c1"), ("s1", "b1"),
                ("c1", "k1"), ("b1", "k2"),
            }),
        )
        assert not dim.is_strict()
        repairs = dimension_repairs(dim)
        for r in repairs:
            assert r.repaired.is_summarizable()
        # Minimum repair: re-point one of the Company edges (delete one,
        # insert the agreeing one) — 2 edge changes.
        c = c_dimension_repairs(dim)
        assert min(r.size for r in c) == 2

    def test_repairs_are_minimal_antichain(self):
        dim = location_dimension(CLEAN + [("stgo", "biobio")])
        repairs = dimension_repairs(dim)
        for r1, r2 in itertools.combinations(repairs, 2):
            assert not (r1.diff < r2.diff)
            assert not (r2.diff < r1.diff)

    def test_clean_dimension_noop_repair(self):
        dim = location_dimension(CLEAN)
        repairs = dimension_repairs(dim)
        assert len(repairs) == 1
        assert repairs[0].size == 0

    def test_unrepairable_covering_raises(self):
        dim = Dimension(
            categories={
                "A": frozenset({"a"}),
                "B": frozenset(),  # no candidate parents at all
            },
            hierarchy=frozenset({("A", "B")}),
            rollup=frozenset(),
        )
        with pytest.raises(RepairError):
            dimension_repairs(dim)
