"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import main


@pytest.fixture
def employee_csv(tmp_path):
    path = tmp_path / "emp.csv"
    path.write_text(
        "Name,Salary\npage,5K\npage,8K\nsmith,3K\nstowe,7K\n"
    )
    return str(path)


@pytest.fixture
def supply_csvs(tmp_path):
    supply = tmp_path / "supply.csv"
    supply.write_text(
        "Company,Receiver,Item\nC1,R1,I1\nC2,R2,I2\nC2,R1,I3\n"
    )
    articles = tmp_path / "articles.csv"
    articles.write_text("Item\nI1\nI2\n")
    return str(supply), str(articles)


class TestCheck:
    def test_inconsistent_exit_code(self, employee_csv, capsys):
        rc = main([
            "check", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 violation(s)" in out
        assert "consistent: False" in out

    def test_consistent_exit_code(self, tmp_path, capsys):
        path = tmp_path / "clean.csv"
        path.write_text("Name,Salary\nsmith,3K\n")
        rc = main([
            "check", "--csv", f"Employee={path}",
            "--fd", "Employee: Name -> Salary",
        ])
        assert rc == 0
        assert "consistent: True" in capsys.readouterr().out

    def test_inclusion_dependency(self, supply_csvs, capsys):
        supply, articles = supply_csvs
        rc = main([
            "check",
            "--csv", f"Supply={supply}",
            "--csv", f"Articles={articles}",
            "--ind", "Supply[Item] <= Articles[Item]",
        ])
        assert rc == 1
        assert "1 violation(s)" in capsys.readouterr().out


class TestRepairs:
    def test_s_repairs(self, employee_csv, capsys):
        rc = main([
            "repairs", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 S-repair(s)" in out
        assert "5K" in out and "8K" in out

    def test_c_repairs_with_insertions(self, supply_csvs, capsys):
        supply, articles = supply_csvs
        rc = main([
            "repairs", "--cardinality",
            "--csv", f"Supply={supply}",
            "--csv", f"Articles={articles}",
            "--ind", "Supply[Item] <= Articles[Item]",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 C-repair(s)" in out


class TestCQA:
    @pytest.mark.parametrize("method", ["enumerate", "rewrite", "sql"])
    def test_all_methods_agree(self, employee_csv, capsys, method):
        rc = main([
            "cqa", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--query", "Q(X, Y) :- Employee(X, Y)",
            "--method", method,
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "smith,3K" in out
        assert "stowe,7K" in out
        assert "page" not in out

    def test_projection_query(self, employee_csv, capsys):
        rc = main([
            "cqa", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--query", "Q(X) :- Employee(X, Y)",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "page" in out


class TestMeasure:
    def test_report(self, employee_csv, capsys):
        rc = main([
            "measure", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "C-repair distance" in out
        assert "0.25" in out


class TestObservabilityFlags:
    def test_trace_writes_jsonl(self, employee_csv, tmp_path, capsys):
        trace = tmp_path / "out.jsonl"
        rc = main([
            "cqa", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--query", "Q(X, Y) :- Employee(X, Y)",
            "--method", "sql",
            "--trace", str(trace),
        ])
        assert rc == 0
        import json

        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line
        ]
        names = {r["name"] for r in records if "name" in r}
        assert "cqa.sql" in names
        metrics_lines = [r for r in records if r.get("kind") == "metrics"]
        assert metrics_lines and "cqa.sql_rows" in metrics_lines[0]["snapshot"]

    def test_metrics_summary_on_stderr(self, employee_csv, capsys):
        rc = main([
            "repairs", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--metrics",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "repairs.s_repairs" in err
        assert "repairs.s_emitted" in err

    def test_no_collector_left_installed(self, employee_csv, capsys):
        from repro import observability

        main([
            "repairs", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--metrics",
        ])
        assert observability.installed() is None


class TestErrors:
    def test_unparsable_fd_exits_nonzero(self, employee_csv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "check", "--csv", f"Employee={employee_csv}",
                "--fd", "Employee Name Salary",
            ])
        assert excinfo.value.code != 0
        assert "cannot parse --fd" in str(excinfo.value.code)

    def test_unparsable_query_returns_2(self, employee_csv, capsys):
        rc = main([
            "cqa", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--query", "not a query",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unsupported_method_returns_2(self, tmp_path, capsys):
        # Self-joins fall outside C_forest: the rewriting raises a
        # RewritingError, which must surface as exit code 2, not a
        # traceback.
        path = tmp_path / "r.csv"
        path.write_text("A,B\n1,2\n")
        rc = main([
            "cqa", "--csv", f"R={path}", "--fd", "R: A -> B",
            "--query", "Q(X) :- R(X, Y), R(Y, X)",
            "--method", "rewrite",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
    def test_missing_constraints(self, employee_csv):
        with pytest.raises(SystemExit):
            main(["check", "--csv", f"Employee={employee_csv}"])

    def test_missing_csv(self):
        with pytest.raises(SystemExit):
            main(["check", "--fd", "R: a -> b"])

    def test_bad_csv_spec(self):
        with pytest.raises(SystemExit):
            main(["check", "--csv", "nodelimiter", "--fd", "R: a -> b"])

    def test_numeric_coercion(self, tmp_path, capsys):
        path = tmp_path / "r.csv"
        path.write_text("K,V\n1,2.5\n1,3.5\n")
        rc = main([
            "repairs", "--csv", f"R={path}", "--fd", "R: K -> V",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 S-repair(s)" in out
        assert "2.5" in out


class TestBudgetFlags:
    def test_budget_flags_parse_and_complete_run_is_unmarked(
        self, employee_csv, capsys
    ):
        rc = main([
            "repairs", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--timeout", "30", "--max-steps", "1000000",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "INCOMPLETE" not in out

    def test_step_budget_marks_output_incomplete(
        self, employee_csv, capsys
    ):
        rc = main([
            "repairs", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--max-steps", "5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "INCOMPLETE: budget exhausted (steps)" in out

    def test_strict_step_budget_exits_6(self, employee_csv, capsys):
        rc = main([
            "repairs", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--max-steps", "5", "--strict",
        ])
        err = capsys.readouterr().err
        assert rc == 6
        assert "steps" in err

    def test_strict_without_budget_is_a_usage_error(self, employee_csv):
        with pytest.raises(SystemExit):
            main([
                "check", "--csv", f"Employee={employee_csv}",
                "--fd", "Employee: Name -> Salary", "--strict",
            ])
