"""Tests for causality over Datalog queries (the abduction connection)."""

import pytest

from repro.causality import (
    actual_causes,
    datalog_causes,
    datalog_responsibility,
    is_datalog_cause,
)
from repro.datalog import Program, rule
from repro.errors import QueryError
from repro.logic import atom, boolean_query, vars_
from repro.relational import Database, fact

X, Y, Z = vars_("x y z")

TC = Program((
    rule(atom("path", X, Y), [atom("edge", X, Y)]),
    rule(atom("path", X, Z), [atom("edge", X, Y), atom("path", Y, Z)]),
))


class TestDatalogCauses:
    def test_single_path_all_counterfactual(self):
        db = Database.from_dict({"edge": [(1, 2), (2, 3)]})
        causes = datalog_causes(db, TC, atom("path", 1, 3))
        assert {c.fact for c in causes} == {
            fact("edge", 1, 2), fact("edge", 2, 3),
        }
        for c in causes:
            assert c.responsibility == 1.0
            assert c.is_counterfactual

    def test_two_disjoint_paths_halve_responsibility(self):
        db = Database.from_dict({
            "edge": [(1, 2), (2, 4), (1, 3), (3, 4)],
        })
        causes = {
            c.fact: c for c in datalog_causes(db, TC, atom("path", 1, 4))
        }
        # Killing the goal needs one edge from each path: every edge is
        # an actual cause with responsibility 1/2.
        assert len(causes) == 4
        for c in causes.values():
            assert c.responsibility == 0.5
        c12 = causes[fact("edge", 1, 2)]
        assert any(
            gamma in (
                frozenset({fact("edge", 1, 3)}),
                frozenset({fact("edge", 3, 4)}),
            )
            for gamma in c12.contingencies
        )

    def test_shared_edge_counterfactual(self):
        # Both paths 1->2->4 and 1->2->5->4 go through edge (1,2).
        db = Database.from_dict({
            "edge": [(1, 2), (2, 4), (2, 5), (5, 4)],
        })
        causes = {
            c.fact: c.responsibility
            for c in datalog_causes(db, TC, atom("path", 1, 4))
        }
        assert causes[fact("edge", 1, 2)] == 1.0
        assert causes[fact("edge", 2, 4)] == 0.5

    def test_false_goal_no_causes(self):
        db = Database.from_dict({"edge": [(1, 2)]})
        assert datalog_causes(db, TC, atom("path", 2, 1)) == []

    def test_ground_goal_required(self):
        db = Database.from_dict({"edge": [(1, 2)]})
        with pytest.raises(QueryError):
            datalog_causes(db, TC, atom("path", X, 2))

    def test_is_cause_and_responsibility(self):
        db = Database.from_dict({"edge": [(1, 2), (2, 3), (9, 9)]})
        goal = atom("path", 1, 3)
        assert is_datalog_cause(db, TC, goal, fact("edge", 1, 2))
        assert not is_datalog_cause(db, TC, goal, fact("edge", 9, 9))
        assert datalog_responsibility(
            db, TC, goal, fact("edge", 1, 2)
        ) == 1.0
        assert datalog_responsibility(
            db, TC, goal, fact("edge", 9, 9)
        ) == 0.0

    def test_agrees_with_cq_causes_on_nonrecursive_goal(self):
        # For a single-atom goal the Datalog machinery must agree with
        # the CQ repair connection.
        db = Database.from_dict({"edge": [(1, 2), (1, 3)]})
        single = Program((
            rule(atom("hop", X), [atom("edge", 1, X)]),
        ))
        dl = {
            c.fact: c.responsibility
            for c in datalog_causes(db, single, atom("hop", 2))
        }
        q = boolean_query([atom("edge", 1, 2)], name="g")
        cq_based = {
            c.fact: c.responsibility for c in actual_causes(db, q)
        }
        assert dl == cq_based
