"""End-to-end smoke tests: every example script runs and prints sense."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CHECKS = {
    "quickstart.py": ["2 S-repairs", "NOT", "smith"],
    "supply_chain_integration.py": [
        "Consistently supplied items", "ord1",
    ],
    "causality_explanations.py": [
        "Most responsible causes", "Three computation paths agree? True",
    ],
    "data_cleaning_pipeline.py": [
        "Cleaning changed", "Entity resolution", "support",
    ],
    "inconsistency_audit.py": [
        "Conflict hypergraph", "C-repairs", "card-measure",
    ],
    "ontology_access.py": ["ABox repairs", "IAR", "brave"],
    "warehouse_dimensions.py": [
        "Strictness violations", "minimal repairs",
    ],
}


@pytest.mark.parametrize("script", sorted(CHECKS))
def test_example_runs(script):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    for needle in CHECKS[script]:
        assert needle in result.stdout, (
            f"{script} output lacks {needle!r}:\n{result.stdout}"
        )


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CHECKS), (
        "examples and smoke checks out of sync"
    )
