"""Property-based tests (hypothesis) for anytime budget truncation.

The contract of every ``*_partial`` API, checked on random instances and
random budgets:

* **soundness** — a budget-truncated result is a subset (prefix) of the
  unbudgeted result; never an element the exact computation would not
  produce;
* **exactness when complete** — ``complete=True`` results are identical
  to the legacy unbudgeted API's output;
* **bracketing** — anytime CQA's fallback value under-approximates the
  exact certain answers, and its ``upper_bound`` detail
  over-approximates them.
"""

from hypothesis import given, settings, strategies as st

from repro.asp import RepairProgram
from repro.constraints import FunctionalDependency
from repro.cqa import consistent_answers, consistent_answers_partial
from repro.logic import atom, cq, vars_
from repro.relational import Database, RelationSchema, Schema
from repro.repairs import c_repairs, c_repairs_partial, s_repairs, s_repairs_partial
from repro.runtime import Budget, BudgetExhaustion

X, Y = vars_("x y")

_KV_SCHEMA = Schema.of(RelationSchema("R", ("K", "V"), key=("K",)))

FD = FunctionalDependency("R", ("K",), ("V",), name="FD")

QUERY = cq([X, Y], [atom("R", X, Y)], name="all")


@st.composite
def kv_databases(draw):
    rows = draw(st.lists(
        st.tuples(
            st.sampled_from(["k0", "k1", "k2"]),
            st.sampled_from(["v0", "v1", "v2"]),
        ),
        min_size=0, max_size=7, unique=True,
    ))
    return Database.from_dict({"R": rows}, schema=_KV_SCHEMA)


_BUDGET_STEPS = st.integers(min_value=1, max_value=400)


def _diffs(repairs):
    return {frozenset(map(repr, r.diff)) for r in repairs}


# ----------------------------------------------------------------------
# S-repairs
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(kv_databases(), _BUDGET_STEPS)
def test_truncated_s_repairs_are_a_subset(db, steps):
    full = _diffs(s_repairs(db, (FD,)))
    partial = s_repairs_partial(db, (FD,), budget=Budget(max_steps=steps))
    assert _diffs(partial.value) <= full
    if partial.complete:
        assert _diffs(partial.value) == full
    else:
        assert partial.exhausted == BudgetExhaustion.STEPS


@settings(max_examples=40, deadline=None)
@given(kv_databases())
def test_complete_partial_equals_legacy(db):
    legacy = s_repairs(db, (FD,))
    partial = s_repairs_partial(db, (FD,))
    assert partial.complete
    assert partial.exhausted is None
    assert [r.diff for r in partial.value] == [r.diff for r in legacy]


@settings(max_examples=40, deadline=None)
@given(kv_databases(), st.integers(min_value=1, max_value=6))
def test_limit_is_a_count_truncation(db, limit):
    full = s_repairs(db, (FD,))
    partial = s_repairs_partial(db, (FD,), limit=limit)
    assert len(partial.value) == min(limit, len(full))
    if len(full) > limit:
        assert partial.exhausted == BudgetExhaustion.COUNT
        # COUNT truncation is caller-requested, so the legacy API
        # returns the prefix instead of raising.
        assert len(s_repairs(db, (FD,), limit=limit)) == limit
    elif len(full) < limit:
        assert partial.complete
    else:
        # limit == len(full): the enumerator stops at the cap without
        # proving nothing remains, so either outcome is acceptable.
        assert partial.complete or (
            partial.exhausted == BudgetExhaustion.COUNT
        )
    assert _diffs(partial.value) <= _diffs(full)


@settings(max_examples=40, deadline=None)
@given(kv_databases(), _BUDGET_STEPS)
def test_both_engines_truncate_soundly(db, steps):
    for engine in ("hypergraph", "search"):
        full = _diffs(s_repairs(db, (FD,), engine=engine))
        partial = s_repairs_partial(
            db, (FD,), engine=engine, budget=Budget(max_steps=steps)
        )
        assert _diffs(partial.value) <= full


# ----------------------------------------------------------------------
# C-repairs
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(kv_databases(), _BUDGET_STEPS)
def test_c_repairs_complete_results_are_exact(db, steps):
    full = _diffs(c_repairs(db, (FD,)))
    partial = c_repairs_partial(db, (FD,), budget=Budget(max_steps=steps))
    if partial.complete:
        assert _diffs(partial.value) == full
    else:
        # Best-so-far: genuine S-repairs whose size is an upper bound
        # on the C-repair distance.
        from repro.repairs import is_s_repair

        bound = partial.detail.get("distance_bound")
        for repair in partial.value:
            assert is_s_repair(db, repair.instance, (FD,))
            assert repair.size == bound


# ----------------------------------------------------------------------
# Conflict hypergraph hitting sets
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(kv_databases(), _BUDGET_STEPS)
def test_truncated_hitting_sets_are_sound(db, steps):
    from repro.constraints import ConflictHypergraph
    from repro.constraints.conflicts import _is_minimal_hitting_set

    graph = ConflictHypergraph.build(db, (FD,))
    full = set(graph.minimal_hitting_sets())
    partial = graph.minimal_hitting_sets_partial(
        budget=Budget(max_steps=steps)
    )
    found = set(partial.value)
    assert found <= full
    edges = sorted(graph.edges, key=lambda e: (len(e), sorted(e)))
    for hitting in partial.value:
        if edges:
            assert _is_minimal_hitting_set(hitting, edges)
    if partial.complete:
        assert found == full


@settings(max_examples=40, deadline=None)
@given(kv_databases(), st.integers(min_value=1, max_value=5))
def test_hitting_set_limit_does_bounded_work(db, limit):
    from repro.constraints import ConflictHypergraph

    graph = ConflictHypergraph.build(db, (FD,))
    full = graph.minimal_hitting_sets()
    limited = graph.minimal_hitting_sets(limit=limit)
    assert len(limited) == min(limit, len(full))
    assert set(limited) <= set(full)


# ----------------------------------------------------------------------
# Stable models
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(kv_databases(), _BUDGET_STEPS)
def test_truncated_stable_models_are_a_subset(db, steps):
    from repro.asp.grounding import ground_program
    from repro.asp.solver import stable_models, stable_models_partial
    from repro.errors import BudgetExceededError

    program = RepairProgram(db, (FD,))
    ground = ground_program(program.program)
    full = set(stable_models(ground))
    try:
        partial = stable_models_partial(
            ground, budget=Budget(max_steps=steps)
        )
    except BudgetExceededError:
        # Exhausted inside grounding-adjacent bookkeeping before the
        # solver boundary could catch: acceptable for strict-less
        # budgets only if raised by a non-anytime layer; solver itself
        # always catches, so reaching here is a failure.
        raise
    assert set(partial.value) <= full
    if partial.complete:
        assert set(partial.value) == full


# ----------------------------------------------------------------------
# Anytime CQA bracketing
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(kv_databases(), _BUDGET_STEPS)
def test_cqa_partial_brackets_exact_answers(db, steps):
    if not db.facts():
        return
    exact = consistent_answers(db, (FD,), QUERY)
    partial = consistent_answers_partial(
        db, (FD,), QUERY, budget=Budget(max_steps=steps)
    )
    if partial.complete:
        assert partial.value == exact
    else:
        # Sound under-approximation ...
        assert partial.value <= exact
        # ... bracketed from above by the prefix intersection.
        upper = partial.detail.get("upper_bound")
        if upper is not None:
            assert exact <= upper
