"""Stress and fault-injection tests for budgets and graceful degradation.

These are the acceptance tests of the robustness layer:

* a hard instance with more than 10^6 S-repairs (``2^20``) under a
  1-second wall-clock deadline returns a *sound, non-empty* partial
  result — in both the library and the CLI path — instead of hanging;
* injected faults (deadline expiry, step starvation, transient SQLite
  failures) are deterministic under a fixed seed and never corrupt
  results;
* strict mode turns exhaustion into an error with a dedicated exit code.
"""

import pytest

from repro.cli import main
from repro.constraints.base import all_satisfied
from repro.cqa import consistent_answers, consistent_answers_partial
from repro.errors import BudgetExceededError, TransientBackendError
from repro.relational.sqlbridge import run_sql
from repro.repairs import s_repairs, s_repairs_partial
from repro.runtime import Budget, BudgetExhaustion, FaultPlan, inject
from repro.workloads import employee_key_violations


@pytest.fixture
def hard_scenario():
    """2^20 > 10^6 S-repairs: 20 violating key groups of size 2."""
    return employee_key_violations(0, 20, 2)


@pytest.fixture
def hard_csv(tmp_path):
    rows = ["Name,Salary"]
    for g in range(20):
        rows.append(f"n{g},100")
        rows.append(f"n{g},200")
    path = tmp_path / "emp.csv"
    path.write_text("\n".join(rows) + "\n")
    return str(path)


class TestDeadlineOnHardInstance:
    def test_library_path_returns_sound_nonempty_prefix(
        self, hard_scenario
    ):
        partial = s_repairs_partial(
            hard_scenario.db,
            hard_scenario.constraints,
            budget=Budget(timeout=1.0),
        )
        assert not partial.complete
        assert partial.exhausted == BudgetExhaustion.DEADLINE
        assert partial.exhausted == "deadline"  # str-enum equality
        assert len(partial.value) > 0
        assert len(partial.value) < 2 ** 20
        # Soundness: every element of the prefix is a genuine S-repair
        # (consistent, and minimal because each deletion set was
        # verified as a minimal hitting set during the search).
        sample = partial.value[:20]
        for repair in sample:
            assert all_satisfied(
                repair.instance, hard_scenario.constraints
            )
        # No duplicates in the prefix.
        diffs = [r.diff for r in partial.value]
        assert len(set(diffs)) == len(diffs)

    def test_wall_clock_is_respected(self, hard_scenario):
        import time

        start = time.monotonic()
        s_repairs_partial(
            hard_scenario.db,
            hard_scenario.constraints,
            budget=Budget(timeout=0.5),
        )
        # Generous overshoot allowance for slow CI runners; the point
        # is that a 2^20-repair enumeration does not run to completion.
        assert time.monotonic() - start < 10.0

    def test_cli_path_prints_partial_and_exits_zero(
        self, hard_csv, capsys
    ):
        rc = main([
            "repairs", "--csv", f"Employee={hard_csv}",
            "--fd", "Employee: Name -> Salary",
            "--timeout", "1", "--limit", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "INCOMPLETE" in out
        assert "deadline" in out
        assert "repair 0:" in out  # non-empty prefix was printed

    def test_cli_strict_mode_exits_6(self, hard_csv, capsys):
        rc = main([
            "repairs", "--csv", f"Employee={hard_csv}",
            "--fd", "Employee: Name -> Salary",
            "--timeout", "1", "--strict",
        ])
        err = capsys.readouterr().err
        assert rc == 6
        assert "deadline" in err

    def test_cli_strict_requires_a_budget(self, hard_csv):
        with pytest.raises(SystemExit):
            main([
                "repairs", "--csv", f"Employee={hard_csv}",
                "--fd", "Employee: Name -> Salary", "--strict",
            ])

    def test_cli_cqa_degrades_to_certain_core(self, hard_csv, capsys):
        rc = main([
            "cqa", "--csv", f"Employee={hard_csv}",
            "--fd", "Employee: Name -> Salary",
            "--query", "Q(X) :- Employee(X, Y)",
            "--timeout", "1",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "INCOMPLETE" in captured.err
        assert "certain-core" in captured.err


class TestStepBudgets:
    """Step budgets make truncation deterministic — same budget, same
    prefix — which is what the fault suite and experiment B11 rely on."""

    def test_same_budget_same_prefix(self):
        scenario = employee_key_violations(2, 8, 2, seed=5)

        def prefix(steps):
            p = s_repairs_partial(
                scenario.db, scenario.constraints,
                budget=Budget(max_steps=steps),
            )
            return [sorted(map(repr, r.diff)) for r in p.value]

        assert prefix(300) == prefix(300)

    def test_strict_library_budget_raises(self):
        scenario = employee_key_violations(0, 8, 2)
        with pytest.raises(BudgetExceededError) as info:
            s_repairs_partial(
                scenario.db, scenario.constraints,
                budget=Budget(max_steps=50, strict=True),
            )
        assert info.value.reason == BudgetExhaustion.STEPS

    def test_legacy_list_api_raises_instead_of_silent_truncation(self):
        """A list-returning API under an exhausted non-strict budget
        must raise rather than silently return a prefix."""
        from repro.runtime import use_budget

        scenario = employee_key_violations(0, 8, 2)
        with use_budget(Budget(max_steps=50)):
            with pytest.raises(BudgetExceededError):
                s_repairs(scenario.db, scenario.constraints)

    def test_cqa_exact_unaffected_when_budget_suffices(self):
        scenario = employee_key_violations(2, 3, 2, seed=1)
        query = scenario.queries["all"]
        exact = consistent_answers(
            scenario.db, scenario.constraints, query
        )
        partial = consistent_answers_partial(
            scenario.db, scenario.constraints, query,
            budget=Budget(max_steps=10 ** 7),
        )
        assert partial.complete
        assert partial.value == exact


class TestFaultInjection:
    def test_injected_deadline_is_deterministic(self):
        scenario = employee_key_violations(0, 8, 2)

        def run():
            plan = FaultPlan(seed=11, expire_deadline_after=200)
            with inject(plan):
                p = s_repairs_partial(
                    scenario.db, scenario.constraints,
                    budget=Budget(timeout=3600.0),
                )
            return (
                p.complete,
                str(p.exhausted),
                [sorted(map(repr, r.diff)) for r in p.value],
                plan.checkpoints_seen,
            )

        first, second = run(), run()
        assert first == second
        complete, reason, prefix, _ = first
        assert not complete
        assert reason == "deadline"
        assert 0 < len(prefix) < 2 ** 8

    def test_injected_starvation_reports_steps(self):
        scenario = employee_key_violations(0, 6, 2)
        with inject(FaultPlan(seed=0, starve_steps_after=100)):
            p = s_repairs_partial(
                scenario.db, scenario.constraints, budget=Budget()
            )
        assert not p.complete
        assert p.exhausted == BudgetExhaustion.STEPS

    def test_injected_faults_never_corrupt_results(self):
        """Data-loss check: the prefix under faults is a subset of the
        unfaulted repair set."""
        scenario = employee_key_violations(1, 6, 2, seed=3)
        full = {
            frozenset(map(repr, r.diff))
            for r in s_repairs(scenario.db, scenario.constraints)
        }
        with inject(FaultPlan(seed=2, expire_deadline_after=150)):
            p = s_repairs_partial(
                scenario.db, scenario.constraints,
                budget=Budget(timeout=3600.0),
            )
        found = {frozenset(map(repr, r.diff)) for r in p.value}
        assert found <= full

    def test_transient_sqlite_failures_are_retried(self):
        scenario = employee_key_violations(2, 2, 2, seed=9)
        baseline = run_sql(scenario.db, "SELECT Name FROM Employee")
        plan = FaultPlan(
            seed=13, sqlite_failure_rate=1.0, max_sqlite_failures=2
        )
        with inject(plan):
            rows = run_sql(scenario.db, "SELECT Name FROM Employee")
        assert rows == baseline
        assert plan.sqlite_failures_injected == 2

    def test_unrecoverable_sqlite_outage_surfaces(self):
        scenario = employee_key_violations(1, 1, 2)
        plan = FaultPlan(seed=0, sqlite_failure_rate=1.0)
        with inject(plan):
            with pytest.raises(TransientBackendError):
                run_sql(scenario.db, "SELECT Name FROM Employee")

    def test_no_hang_under_combined_faults(self):
        """Deadline + sqlite faults together: the pipeline terminates
        and classifies the outcome instead of wedging."""
        import time

        scenario = employee_key_violations(0, 10, 2)
        start = time.monotonic()
        with inject(
            FaultPlan(
                seed=4,
                expire_deadline_after=500,
                sqlite_failure_rate=0.2,
                max_sqlite_failures=3,
            )
        ):
            p = consistent_answers_partial(
                scenario.db,
                scenario.constraints,
                scenario.queries["all"],
                budget=Budget(timeout=3600.0),
            )
        assert time.monotonic() - start < 30.0
        assert not p.complete
        assert p.exhausted == BudgetExhaustion.DEADLINE
        assert p.detail["fallback"] == "certain-core"
