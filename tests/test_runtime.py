"""Unit tests for the execution-budget runtime (repro.runtime)."""

import time

import pytest

from repro.errors import BudgetExceededError, TransientBackendError
from repro.runtime import (
    Budget,
    BudgetExhaustion,
    FaultPlan,
    Partial,
    active_plan,
    checkpoint,
    count_result,
    current_budget,
    inject,
    resolve_budget,
    retry_transient,
    suspend_budget,
    use_budget,
)
from repro.runtime.budget import _CLOCK_STRIDE


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestBudget:
    def test_unbounded_budget_never_exhausts(self):
        b = Budget()
        for _ in range(1000):
            b.checkpoint()
        b.count_result(10)
        assert b.exhausted is None

    def test_step_budget(self):
        b = Budget(max_steps=5)
        for _ in range(5):
            b.checkpoint()
        with pytest.raises(BudgetExceededError) as info:
            b.checkpoint()
        assert info.value.reason == BudgetExhaustion.STEPS
        assert b.exhausted == BudgetExhaustion.STEPS

    def test_exhausted_budget_re_raises(self):
        b = Budget(max_steps=1)
        b.checkpoint()
        with pytest.raises(BudgetExceededError):
            b.checkpoint()
        with pytest.raises(BudgetExceededError):
            b.checkpoint()
        with pytest.raises(BudgetExceededError):
            b.count_result()

    def test_deadline_budget_with_fake_clock(self):
        clock = FakeClock()
        b = Budget(timeout=2.0, clock=clock).start()
        b.checkpoint()
        clock.advance(5.0)
        with pytest.raises(BudgetExceededError) as info:
            # The clock is strided, so one checkpoint may not look.
            for _ in range(2 * _CLOCK_STRIDE):
                b.checkpoint()
        assert info.value.reason == BudgetExhaustion.DEADLINE

    def test_deadline_checked_at_most_every_stride(self):
        calls = []

        def clock():
            calls.append(1)
            return 0.0

        b = Budget(timeout=100.0, clock=clock).start()
        for _ in range(10 * _CLOCK_STRIDE):
            b.checkpoint()
        # start() reads once; afterwards ~one read per stride.
        assert len(calls) <= 12

    def test_result_cap_never_over_emits(self):
        b = Budget(max_results=3)
        emitted = []
        with pytest.raises(BudgetExceededError) as info:
            for i in range(10):
                b.count_result()
                emitted.append(i)
        assert emitted == [0, 1, 2]
        assert info.value.reason == BudgetExhaustion.COUNT

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Budget(timeout=-1)
        with pytest.raises(ValueError):
            Budget(max_steps=-1)
        with pytest.raises(ValueError):
            Budget(max_results=-1)

    def test_start_is_idempotent(self):
        clock = FakeClock()
        b = Budget(timeout=1.0, clock=clock)
        b.start()
        first = b._deadline
        clock.advance(10.0)
        b.start()
        assert b._deadline == first

    def test_remaining_accessors(self):
        clock = FakeClock()
        b = Budget(timeout=4.0, max_results=2, clock=clock).start()
        clock.advance(1.0)
        assert b.remaining_time() == pytest.approx(3.0)
        assert b.elapsed() == pytest.approx(1.0)
        assert b.remaining_results() == 2
        b.count_result()
        assert b.remaining_results() == 1
        assert Budget().remaining_time() is None
        assert Budget().remaining_results() is None

    def test_repr(self):
        assert "unbounded" in repr(Budget())
        assert "max_steps=3" in repr(Budget(max_steps=3))
        b = Budget(max_steps=1)
        b.checkpoint()
        with pytest.raises(BudgetExceededError):
            b.checkpoint()
        assert "steps" in repr(b)

    def test_exception_carries_budget(self):
        b = Budget(max_steps=0)
        with pytest.raises(BudgetExceededError) as info:
            b.checkpoint()
        assert info.value.budget is b
        assert "steps" in str(info.value)


class TestAmbientBudget:
    def test_free_functions_are_noops_without_budget(self):
        assert current_budget() is None
        checkpoint()
        count_result()

    def test_use_budget_activates_and_deactivates(self):
        b = Budget(max_steps=100)
        assert current_budget() is None
        with use_budget(b):
            assert current_budget() is b
            checkpoint()
        assert current_budget() is None
        assert b.steps == 1

    def test_use_budget_none_is_noop(self):
        with use_budget(None):
            assert current_budget() is None

    def test_nesting_innermost_wins(self):
        outer, inner = Budget(), Budget()
        with use_budget(outer):
            with use_budget(inner):
                assert current_budget() is inner
                checkpoint()
            assert current_budget() is outer
        assert inner.steps == 1
        assert outer.steps == 0

    def test_resolve_budget(self):
        explicit, ambient = Budget(), Budget()
        assert resolve_budget(explicit) is explicit
        assert resolve_budget(None) is None
        with use_budget(ambient):
            assert resolve_budget(None) is ambient
            assert resolve_budget(explicit) is explicit

    def test_suspend_budget_masks_exhausted_budget(self):
        b = Budget(max_steps=1)
        with use_budget(b):
            checkpoint()
            with pytest.raises(BudgetExceededError):
                checkpoint()
            with suspend_budget():
                assert current_budget() is None
                checkpoint()  # no-op, does not re-raise
                count_result()
            with pytest.raises(BudgetExceededError):
                checkpoint()


class TestPartial:
    def test_done(self):
        p = Partial.done([1, 2, 3])
        assert p.complete
        assert p.exhausted is None
        assert p.value == [1, 2, 3]
        assert not p.hit_resource_limit
        assert p.unwrap() == [1, 2, 3]
        assert p.unwrap(strict=True) == [1, 2, 3]

    def test_truncated(self):
        p = Partial.truncated([1], BudgetExhaustion.DEADLINE)
        assert not p.complete
        assert p.exhausted == BudgetExhaustion.DEADLINE
        assert p.hit_resource_limit
        assert p.unwrap() == [1]
        with pytest.raises(BudgetExceededError):
            p.unwrap(strict=True)

    def test_count_truncation_is_not_a_resource_limit(self):
        p = Partial.truncated([1], BudgetExhaustion.COUNT)
        assert not p.hit_resource_limit

    def test_budget_stats_recorded(self):
        b = Budget(max_steps=10)
        b.checkpoint(4)
        p = Partial.done([], b)
        assert p.steps == 4

    def test_detail(self):
        p = Partial.truncated(
            [], BudgetExhaustion.STEPS, None, distance_bound=3
        )
        assert p.detail["distance_bound"] == 3

    def test_map_preserves_completeness(self):
        p = Partial.truncated([1, 2], BudgetExhaustion.STEPS)
        q = p.map(len)
        assert q.value == 2
        assert not q.complete
        assert q.exhausted == BudgetExhaustion.STEPS
        r = Partial.done([1]).map(len)
        assert r.complete


class TestRetry:
    def test_succeeds_without_failures(self):
        assert retry_transient(lambda: 42, sleep=lambda s: None) == 42

    def test_retries_transient_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientBackendError("injected")
            return "ok"

        delays = []
        assert retry_transient(flaky, sleep=delays.append) == "ok"
        assert len(attempts) == 3
        # Exponential backoff (0.01 then 0.02) with ±25% seeded jitter.
        assert len(delays) == 2
        assert 0.0075 <= delays[0] <= 0.0125
        assert 0.015 <= delays[1] <= 0.025
        # The schedule is deterministic for a fixed seed.
        repeat = []
        attempts.clear()
        retry_transient(flaky, sleep=repeat.append)
        assert repeat == delays

    def test_exhausted_retries_re_raise(self):
        def always_fails():
            raise TransientBackendError("injected")

        with pytest.raises(TransientBackendError):
            retry_transient(
                always_fails, attempts=3, sleep=lambda s: None
            )

    def test_non_transient_errors_propagate_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_transient(broken, sleep=lambda s: None)
        assert len(attempts) == 1

    def test_deadline_cancels_backoff(self):
        b = Budget(max_steps=1)

        def always_fails():
            raise TransientBackendError("injected")

        with use_budget(b):
            checkpoint()  # consume the single step
            with pytest.raises(BudgetExceededError):
                retry_transient(always_fails, sleep=lambda s: None)


class TestFaultPlans:
    def test_no_plan_by_default(self):
        assert active_plan() is None

    def test_deadline_injection_is_deterministic(self):
        for _ in range(2):
            plan = FaultPlan(seed=3, expire_deadline_after=5)
            b = Budget(timeout=1000.0)
            with inject(plan):
                with pytest.raises(BudgetExceededError) as info:
                    for _ in range(100):
                        b.checkpoint()
                assert info.value.reason == BudgetExhaustion.DEADLINE
                assert plan.checkpoints_seen == 6
            assert active_plan() is None

    def test_step_starvation_injection(self):
        plan = FaultPlan(seed=0, starve_steps_after=3)
        b = Budget()
        with inject(plan):
            with pytest.raises(BudgetExceededError) as info:
                for _ in range(10):
                    b.checkpoint()
            assert info.value.reason == BudgetExhaustion.STEPS

    def test_sqlite_fault_schedule_is_seeded(self):
        def schedule(seed):
            plan = FaultPlan(seed=seed, sqlite_failure_rate=0.5)
            out = []
            with inject(plan):
                for _ in range(20):
                    try:
                        plan._on_sqlite_attempt()
                        out.append(0)
                    except TransientBackendError:
                        out.append(1)
            return out

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_max_sqlite_failures(self):
        plan = FaultPlan(
            seed=1, sqlite_failure_rate=1.0, max_sqlite_failures=2
        )
        failures = 0
        with inject(plan):
            for _ in range(10):
                try:
                    plan._on_sqlite_attempt()
                except TransientBackendError:
                    failures += 1
        assert failures == 2

    def test_inject_is_not_reentrant(self):
        with inject(FaultPlan(seed=0)):
            with pytest.raises(RuntimeError):
                with inject(FaultPlan(seed=1)):
                    pass

    def test_faults_do_not_leak_after_exit(self):
        with inject(FaultPlan(seed=0, expire_deadline_after=0)):
            pass
        b = Budget(timeout=1000.0)
        for _ in range(10):
            b.checkpoint()
        assert b.exhausted is None


class TestWallClockIntegration:
    def test_real_deadline_fires(self):
        b = Budget(timeout=0.01).start()
        time.sleep(0.02)
        with pytest.raises(BudgetExceededError) as info:
            for _ in range(10 * _CLOCK_STRIDE):
                b.checkpoint()
        assert info.value.reason == BudgetExhaustion.DEADLINE
