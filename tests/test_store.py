"""Durable tenant state: WAL framing, snapshots, recovery, crash-survival.

The contract under test is the acknowledged-prefix property: after a
crash at *any* byte — torn frame, killed process, injected storage
fault — recovery yields exactly the state produced by every
acknowledged mutation and no unacknowledged one.  Torn tails are
truncated; mid-log corruption (acknowledged records with bit rot) is
refused, never silently dropped.
"""

import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
import zlib

import pytest

from repro.runtime.faults import FaultPlan, inject
from repro.serve import CQAService
from repro.serve.specs import PayloadError, parse_database, spec_of_instance
from repro.serve.store import (
    RecoveredState,
    StoreCorruptionError,
    StorePolicy,
    StoreWriteError,
    TenantStore,
    apply_record,
    inspect_store,
    verify_store,
)
from repro.serve.store.snapshot import (
    list_snapshots,
    load_latest_snapshot,
    prune_snapshots,
    state_digest,
    write_snapshot,
)
from repro.serve.store.wal import (
    WriteAheadLog,
    _encode_frame,
    scan_wal,
    truncate_wal,
)

EMPLOYEE_SPEC = {
    "relations": {
        "Employee": {
            "columns": ["Name", "Salary"],
            "key": ["Name"],
            "rows": [
                ["page", "5K"],
                ["page", "8K"],
                ["smith", "3K"],
            ],
        },
        # The mutation workload's target: untouched by CQA queries.
        "Audit": {"columns": ["K", "V"], "rows": []},
    },
    "constraints": {"fd": ["Employee: Name -> Salary"]},
}


def _store(tmp_path, **policy):
    policy.setdefault("fsync", "always")
    return TenantStore(str(tmp_path), StorePolicy(**policy))


def _recovered_digest(tmp_path) -> str:
    st = TenantStore(str(tmp_path), StorePolicy())
    try:
        return st.recover().state_digest
    finally:
        st.close()


# ----------------------------------------------------------------------
# WAL framing and scan classification
# ----------------------------------------------------------------------


class TestWalFraming:
    def test_append_scan_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="always").open()
        records = [
            {"lsn": i, "op": "put_db", "db": f"d{i}", "spec": {"x": i}}
            for i in range(1, 6)
        ]
        for record in records:
            wal.append(record)
        wal.close()
        scan = scan_wal(path)
        assert scan.clean
        assert scan.records == records
        assert scan.good_bytes == scan.total_bytes == os.path.getsize(path)

    def test_torn_header_tail_is_torn_not_corrupt(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="always").open()
        wal.append({"lsn": 1, "op": "del_db", "db": "a"})
        wal.close()
        good = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\x09\x00\x00")  # 3 of 8 header bytes
        scan = scan_wal(path)
        assert scan.torn and not scan.corrupt
        assert scan.good_bytes == good
        assert len(scan.records) == 1

    def test_torn_payload_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="always").open()
        wal.append({"lsn": 1, "op": "del_db", "db": "a"})
        wal.close()
        good = os.path.getsize(path)
        frame = _encode_frame({"lsn": 2, "op": "del_db", "db": "b"})
        with open(path, "ab") as handle:
            handle.write(frame[: len(frame) - 3])
        scan = scan_wal(path)
        assert scan.torn and not scan.corrupt
        assert scan.good_bytes == good

    def test_bad_final_frame_at_eof_is_a_tear(self, tmp_path):
        # A complete-looking frame failing CRC at exact EOF is the
        # signature of a short write that landed inside the payload.
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="always").open()
        wal.append({"lsn": 1, "op": "del_db", "db": "a"})
        wal.append({"lsn": 2, "op": "del_db", "db": "b"})
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 2)
            byte = handle.read(1)[0]
            handle.seek(size - 2)
            handle.write(bytes([byte ^ 0xFF]))
        scan = scan_wal(path)
        assert scan.torn and not scan.corrupt
        assert len(scan.records) == 1

    def test_bad_frame_with_data_behind_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="always").open()
        wal.append({"lsn": 1, "op": "del_db", "db": "a"})
        wal.append({"lsn": 2, "op": "del_db", "db": "b"})
        wal.close()
        with open(path, "r+b") as handle:
            handle.seek(10)  # inside the first frame's payload
            byte = handle.read(1)[0]
            handle.seek(10)
            handle.write(bytes([byte ^ 0x01]))
        scan = scan_wal(path)
        assert scan.corrupt and not scan.torn
        assert scan.good_bytes == 0 and not scan.records

    def test_lsn_regression_is_flagged(self, tmp_path):
        path = tmp_path / "wal.log"
        with open(path, "wb") as handle:
            handle.write(_encode_frame({"lsn": 2, "op": "del_db", "db": "a"}))
            handle.write(_encode_frame({"lsn": 2, "op": "del_db", "db": "b"}))
        scan = scan_wal(path)
        assert scan.torn  # second frame is the last one → tear, not rot
        assert len(scan.records) == 1

    def test_truncate_wal_cuts_and_reports(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="always").open()
        wal.append({"lsn": 1, "op": "del_db", "db": "a"})
        wal.close()
        good = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"junk")
        assert truncate_wal(path, good) == 4
        assert os.path.getsize(path) == good
        assert truncate_wal(path, good) == 0  # idempotent

    def test_missing_file_scans_clean_and_empty(self, tmp_path):
        scan = scan_wal(tmp_path / "absent.log")
        assert scan.clean and not scan.records and scan.total_bytes == 0


class TestFsyncPolicies:
    def test_unknown_policy_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "w", fsync="sometimes")
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "w", fsync_interval=0)

    @pytest.mark.parametrize(
        "policy,interval,appends,expected",
        [
            ("always", 16, 5, 5),
            ("interval", 2, 5, 2),  # after the 2nd and 4th append
            ("never", 16, 5, 0),
        ],
    )
    def test_fsync_cadence(
        self, tmp_path, monkeypatch, policy, interval, appends, expected
    ):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))
        )
        wal = WriteAheadLog(
            tmp_path / "wal.log", fsync=policy, fsync_interval=interval
        ).open()
        calls.clear()  # open() fsyncs the directory
        for i in range(appends):
            wal.append({"lsn": i + 1, "op": "del_db", "db": "x"})
        assert len(calls) == expected
        wal.close()  # close flushes whatever is pending


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------


class TestSnapshots:
    def test_write_load_round_trip(self, tmp_path):
        specs = {"emp": EMPLOYEE_SPEC}
        written = write_snapshot(tmp_path, specs, lsn=7)
        loaded = load_latest_snapshot(tmp_path)
        assert loaded is not None
        assert loaded.lsn == 7
        assert loaded.digest == written.digest
        assert loaded.specs == specs
        assert os.path.basename(written.path).startswith("snap_000000000007_")

    def test_digest_is_content_addressed(self, tmp_path):
        d1, per_db = state_digest({"emp": EMPLOYEE_SPEC})
        d2, _ = state_digest({"emp": json.loads(json.dumps(EMPLOYEE_SPEC))})
        assert d1 == d2
        assert set(per_db) == {"emp"}
        assert set(per_db["emp"]) == {"instance", "constraints"}
        mutated = json.loads(json.dumps(EMPLOYEE_SPEC))
        mutated["relations"]["Employee"]["rows"].pop()
        d3, _ = state_digest({"emp": mutated})
        assert d3 != d1

    def test_corrupt_snapshot_falls_back_a_generation(self, tmp_path):
        write_snapshot(tmp_path, {"a": EMPLOYEE_SPEC}, lsn=3)
        newer = write_snapshot(tmp_path, {"b": EMPLOYEE_SPEC}, lsn=9)
        with open(newer.path, "r+", encoding="utf-8") as handle:
            document = json.load(handle)
            document["databases"]["b"]["relations"]["Employee"][
                "rows"
            ].append(["mallory", "0K"])
            handle.seek(0)
            json.dump(document, handle)
            handle.truncate()
        loaded = load_latest_snapshot(tmp_path)
        assert loaded is not None and loaded.lsn == 3
        assert set(loaded.specs) == {"a"}

    def test_prune_keeps_newest(self, tmp_path):
        for lsn in (1, 2, 3, 4):
            write_snapshot(tmp_path, {"a": EMPLOYEE_SPEC}, lsn=lsn)
        removed = prune_snapshots(tmp_path, keep=2)
        assert removed == 2
        remaining = [lsn for lsn, _ in list_snapshots(tmp_path)]
        assert remaining == [4, 3]


# ----------------------------------------------------------------------
# TenantStore: recovery, compaction, corruption refusal
# ----------------------------------------------------------------------


class TestTenantStore:
    def test_recover_empty_directory(self, tmp_path):
        st = _store(tmp_path)
        recovered = st.recover()
        assert isinstance(recovered, RecoveredState)
        assert recovered.last_lsn == 0 and not recovered.specs
        st.close()

    def test_restart_reproduces_the_exact_state(self, tmp_path):
        st = _store(tmp_path)
        st.recover()
        st.append_put_db("emp", EMPLOYEE_SPEC)
        st.append_mutate("emp", insert=[["Audit", "k1", "v1"]], delete=[])
        st.append_mutate(
            "emp", insert=[], delete=[["Employee", "page", "8K"]]
        )
        live = st.current_state_digest()
        st.close()
        st2 = _store(tmp_path)
        recovered = st2.recover()
        assert recovered.state_digest == live
        assert recovered.records_replayed == 3
        assert recovered.last_lsn == 3
        rows = recovered.specs["emp"]["relations"]["Employee"]["rows"]
        assert ["page", "8K"] not in rows
        st2.close()

    def test_compaction_folds_and_resets(self, tmp_path):
        st = _store(tmp_path, compact_every=4)
        st.recover()
        st.append_put_db("emp", EMPLOYEE_SPEC)
        for i in range(3):  # 4th record triggers compaction
            st.append_mutate(
                "emp", insert=[["Audit", f"k{i}", "v"]], delete=[]
            )
        stats = st.stats()
        assert stats["snapshot"]["lsn"] == 4
        assert stats["last_compaction"]["records_folded"] == 4
        assert stats["wal"]["records_since_snapshot"] == 0
        live = st.current_state_digest()
        st.close()
        assert _recovered_digest(tmp_path) == live

    def test_crash_between_snapshot_and_wal_reset_is_harmless(
        self, tmp_path
    ):
        # Simulate by snapshotting at the current lsn while leaving the
        # WAL untouched: replay must skip the folded records.
        st = _store(tmp_path)
        st.recover()
        st.append_put_db("emp", EMPLOYEE_SPEC)
        st.append_mutate("emp", insert=[["Audit", "k", "v"]], delete=[])
        live = st.current_state_digest()
        write_snapshot(str(tmp_path), st._specs, lsn=2)
        st.close()
        st2 = _store(tmp_path)
        recovered = st2.recover()
        assert recovered.state_digest == live
        assert recovered.records_replayed == 0  # all folded
        st2.close()

    def test_mid_log_corruption_is_refused(self, tmp_path):
        st = _store(tmp_path)
        st.recover()
        st.append_put_db("a", EMPLOYEE_SPEC)
        st.append_put_db("b", EMPLOYEE_SPEC)
        st.close()
        wal = tmp_path / "wal.log"
        with open(wal, "r+b") as handle:
            handle.seek(12)
            byte = handle.read(1)[0]
            handle.seek(12)
            handle.write(bytes([byte ^ 0x01]))
        st2 = _store(tmp_path)
        with pytest.raises(StoreCorruptionError):
            st2.recover()
        report = verify_store(tmp_path)
        assert not report["ok"] and report["problems"]
        # Forensics mode recovers the clean prefix, explicitly.
        st3 = TenantStore(
            str(tmp_path), StorePolicy(allow_corruption=True)
        )
        recovered = st3.recover()
        assert recovered.corrupt_bytes_dropped > 0
        assert recovered.problems
        st3.close()

    def test_failed_wal_refuses_until_restart(self, tmp_path):
        st = _store(tmp_path)
        st.recover()
        st.append_put_db("a", EMPLOYEE_SPEC)
        st._wal.failed = "disk on fire"
        with pytest.raises(StoreWriteError):
            st.append_put_db("b", EMPLOYEE_SPEC)
        assert st.failed is not None
        st.close()
        st2 = _store(tmp_path)
        recovered = st2.recover()
        assert set(recovered.specs) == {"a"}
        assert st2.failed is None
        st2.close()

    def test_inspect_and_verify_reports(self, tmp_path):
        st = _store(tmp_path, compact_every=3)
        st.recover()
        st.append_put_db("emp", EMPLOYEE_SPEC)
        st.append_mutate("emp", insert=[["Audit", "k", "v"]], delete=[])
        st.append_mutate("emp", insert=[["Audit", "k2", "v"]], delete=[])
        st.append_mutate("emp", insert=[["Audit", "k3", "v"]], delete=[])
        st.close()
        inspected = inspect_store(tmp_path)
        assert inspected["wal"]["by_op"] == {"mutate": 1}  # post-compact
        assert inspected["snapshots"][0]["lsn"] == 3
        report = verify_store(tmp_path)
        assert report["ok"] and report["last_lsn"] == 4
        assert report["databases"]["emp"]["facts"] == 3 + 3

    def test_apply_record_rejects_unknown_shapes(self):
        with pytest.raises(StoreCorruptionError):
            apply_record({}, {"lsn": 1, "op": "chmod", "db": "a"})
        with pytest.raises(StoreCorruptionError):
            apply_record(
                {}, {"lsn": 1, "op": "mutate", "db": "ghost", "insert": []}
            )


# ----------------------------------------------------------------------
# Seeded storage faults (FaultPlan)
# ----------------------------------------------------------------------


class TestStorageFaults:
    def test_short_write_fails_unacked_and_recovery_truncates(
        self, tmp_path
    ):
        st = _store(tmp_path)
        st.recover()
        st.append_put_db("a", EMPLOYEE_SPEC)
        plan = FaultPlan(
            seed=7, storage_short_write_rate=1.0, max_storage_faults=1
        )
        with inject(plan):
            with pytest.raises(StoreWriteError):
                st.append_put_db("b", EMPLOYEE_SPEC)
            with pytest.raises(StoreWriteError):
                st.append_put_db("c", EMPLOYEE_SPEC)  # crash-only
        assert plan.storage_faults_injected == 1
        st.close()
        st2 = _store(tmp_path)
        recovered = st2.recover()
        assert set(recovered.specs) == {"a"}  # exactly the acked prefix
        assert recovered.torn_bytes_truncated > 0
        st2.close()

    def test_silent_bitflip_is_caught_at_recovery(self, tmp_path):
        st = _store(tmp_path)
        st.recover()
        with inject(
            FaultPlan(
                seed=3, storage_bitflip_rate=1.0, max_storage_faults=1
            )
        ):
            st.append_put_db("a", EMPLOYEE_SPEC)  # acked, corrupted
        st.append_put_db("b", EMPLOYEE_SPEC)
        st.close()
        st2 = _store(tmp_path)
        # An acknowledged record is unrecoverable: refuse, don't hide.
        with pytest.raises(StoreCorruptionError):
            st2.recover()

    def test_fsync_failure_refuses_the_ack(self, tmp_path):
        st = _store(tmp_path)
        st.recover()
        with inject(
            FaultPlan(
                seed=1,
                storage_fsync_fail_rate=1.0,
                max_storage_faults=1,
            )
        ):
            with pytest.raises(StoreWriteError):
                st.append_put_db("a", EMPLOYEE_SPEC)
        assert st.failed is not None
        st.close()

    def test_same_seed_same_fault_schedule(self, tmp_path):
        def drive(seed):
            plan = FaultPlan(
                seed=seed,
                storage_short_write_rate=0.3,
                max_storage_faults=None,
            )
            outcomes = []
            with inject(plan):
                wal = WriteAheadLog(
                    tmp_path / f"wal-{seed}-{len(os.listdir(tmp_path))}",
                    fsync="never",
                ).open()
                for i in range(20):
                    if wal.failed is not None:
                        outcomes.append("refused")
                        continue
                    try:
                        wal.append(
                            {"lsn": i + 1, "op": "del_db", "db": "x"}
                        )
                        outcomes.append("ok")
                    except StoreWriteError:
                        outcomes.append("fault")
                wal.close()
            return outcomes

        first, second = drive(99), drive(99)
        assert first == second
        assert "fault" in first

    def test_plan_snapshot_restore_round_trips_storage_state(self):
        plan = FaultPlan(
            seed=5,
            storage_short_write_rate=0.5,
            storage_bitflip_rate=0.25,
            storage_fsync_fail_rate=0.125,
            max_storage_faults=3,
        )
        plan._on_storage_write(b"x" * 64)
        restored = FaultPlan.restore(plan.snapshot())
        assert restored.storage_short_write_rate == 0.5
        assert restored.storage_bitflip_rate == 0.25
        assert restored.storage_fsync_fail_rate == 0.125
        assert restored.max_storage_faults == 3
        assert restored.storage_writes == plan.storage_writes
        assert restored.storage_faults_injected == (
            plan.storage_faults_injected
        )
        # Identical RNG stream from here on.
        assert restored._on_storage_write(
            b"y" * 64
        ) == plan._on_storage_write(b"y" * 64)


# ----------------------------------------------------------------------
# The acknowledged-prefix property, byte by byte
# ----------------------------------------------------------------------


class TestAckedPrefixProperty:
    def test_recovery_at_every_seeded_truncation_offset(self, tmp_path):
        """Kill the writer at seeded random byte offsets: recovery must
        yield exactly the complete-frame prefix, never refuse, never
        resurrect a torn suffix."""
        base = tmp_path / "base"
        base.mkdir()
        st = _store(base)
        st.recover()
        st.append_put_db("emp", EMPLOYEE_SPEC)
        for i in range(12):
            st.append_mutate(
                "emp",
                insert=[["Audit", f"k{i:03d}", f"v{i}"]],
                delete=[["Audit", f"k{i - 1:03d}", f"v{i - 1}"]]
                if i % 3 == 2
                else [],
            )
        st.close()
        wal_bytes = (base / "wal.log").read_bytes()
        scan = scan_wal(base / "wal.log")
        assert scan.clean and len(scan.records) == 13

        # Frame boundaries (canonical encoding is deterministic).
        ends, offset = [], 0
        for record in scan.records:
            offset += len(_encode_frame(record))
            ends.append(offset)
        assert offset == len(wal_bytes)

        rng = random.Random(20260808)
        offsets = sorted(
            {0, 1, len(wal_bytes)}
            | {rng.randrange(len(wal_bytes)) for _ in range(30)}
            | {end for end in ends[:4]}  # exact frame boundaries
            | {ends[0] + 3}  # mid-header
        )
        for cut in offsets:
            trial = tmp_path / f"cut{cut:05d}"
            trial.mkdir()
            (trial / "wal.log").write_bytes(wal_bytes[:cut])
            expected_specs = {}
            for record, end in zip(scan.records, ends):
                if end <= cut:
                    apply_record(expected_specs, record)
            expected, _ = state_digest(expected_specs)
            st2 = TenantStore(str(trial), StorePolicy())
            recovered = st2.recover()  # must never refuse a pure cut
            assert recovered.state_digest == expected, f"offset {cut}"
            complete = sum(1 for end in ends if end <= cut)
            assert recovered.records_replayed == complete
            st2.close()


# ----------------------------------------------------------------------
# Service wiring: phase gate, durable acks, restart equivalence
# ----------------------------------------------------------------------


class TestServiceDurability:
    def test_phase_gate_and_recovery(self, tmp_path):
        svc = CQAService(store=_store(tmp_path))
        assert svc.phase == "recovering"
        status, body, _ = svc.health()
        assert status == 503 and body["phase"] == "recovering"
        status, body, _ = svc.register_db("emp", EMPLOYEE_SPEC)
        assert status == 503
        status, body, _ = svc.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert status == 503 and body["phase"] == "recovering"
        info = svc.recover()
        assert info["phase"] == "ready" and svc.phase == "ready"
        status, body, _ = svc.health()
        assert status == 200 and body["phase"] == "ready"
        assert "store" in body
        svc.close()

    def test_acked_mutations_survive_restart(self, tmp_path):
        svc = CQAService(store=_store(tmp_path))
        svc.recover()
        status, body, _ = svc.register_db("emp", EMPLOYEE_SPEC)
        assert status == 200 and body["lsn"] == 1
        status, body, _ = svc.handle_mutate(
            "emp",
            {
                "insert": [["Audit", "a1", "v1"], ["Audit", "a2", "v2"]],
                "delete": [["Employee", "page", "8K"]],
            },
        )
        assert status == 200 and body["lsn"] == 2
        assert body["inserted"] == 2 and body["deleted"] == 1
        status, answers_before, _ = svc.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        svc.close()

        svc2 = CQAService(store=_store(tmp_path))
        svc2.recover()
        status, answers_after, _ = svc2.handle_cqa(
            {"db": "emp", "query": "Q(X) :- Employee(X, Y)"}
        )
        assert answers_after["answers"] == answers_before["answers"]
        status, body, _ = svc2.handle_cqa(
            {"db": "emp", "query": "Q(K) :- Audit(K, V)"}
        )
        assert body["answers"] == [["a1"], ["a2"]]
        status, body, _ = svc2.remove_db("emp")
        assert status == 200 and body["lsn"] == 3
        svc2.close()

        svc3 = CQAService(store=_store(tmp_path))
        svc3.recover()
        status, body, _ = svc3.list_dbs()
        assert body["databases"] == {}
        svc3.close()

    def test_mutate_validation(self, tmp_path):
        svc = CQAService(store=_store(tmp_path))
        svc.recover()
        svc.register_db("emp", EMPLOYEE_SPEC)
        status, body, _ = svc.handle_mutate("emp", {})
        assert status == 400
        status, body, _ = svc.handle_mutate(
            "emp", {"insert": [["Ghost", "x"]]}
        )
        assert status == 400 and "Ghost" in body["error"]
        status, body, _ = svc.handle_mutate(
            "emp", {"insert": [["Audit", "only-one-value"]]}
        )
        assert status == 400 and "2 values" in body["error"]
        status, body, _ = svc.handle_mutate(
            "ghost", {"insert": [["Audit", "k", "v"]]}
        )
        assert status == 404
        # Nothing landed in the WAL for any refused mutation.
        assert svc.store.stats()["last_lsn"] == 1
        svc.close()

    def test_store_failure_is_503_and_never_acked(self, tmp_path):
        svc = CQAService(store=_store(tmp_path))
        svc.recover()
        svc.register_db("emp", EMPLOYEE_SPEC)
        with inject(
            FaultPlan(
                seed=7,
                storage_short_write_rate=1.0,
                max_storage_faults=1,
            )
        ):
            status, body, _ = svc.handle_mutate(
                "emp", {"insert": [["Audit", "lost", "x"]]}
            )
        assert status == 503 and body["error"] == "store-unavailable"
        status, health, _ = svc.health()
        assert health["status"] == "degraded"
        svc.close()
        # The refused mutation must NOT be present after restart...
        svc2 = CQAService(store=_store(tmp_path))
        svc2.recover()
        status, body, _ = svc2.handle_cqa(
            {"db": "emp", "query": "Q(K) :- Audit(K, V)"}
        )
        assert body["answers"] == []
        # ...and the registry itself survived.
        status, body, _ = svc2.list_dbs()
        assert "emp" in body["databases"]
        svc2.close()

    def test_register_instance_round_trips_durably(self, tmp_path):
        db = parse_database(EMPLOYEE_SPEC)
        spec = spec_of_instance(
            db, {"fd": ["Employee: Name -> Salary"]}
        )
        svc = CQAService(store=_store(tmp_path))
        svc.recover()
        svc.register_instance(
            "emp",
            db,
            (),
            constraint_spec={"fd": ["Employee: Name -> Salary"]},
        )
        svc.close()
        svc2 = CQAService(store=_store(tmp_path))
        recovered = svc2.recover()
        assert recovered["databases"] == 1
        status, body, _ = svc2.list_dbs()
        assert body["databases"]["emp"]["facts"] == len(db)
        assert body["databases"]["emp"]["constraints"] == 1
        svc2.close()
        # And the rendered spec itself re-parses to the same instance.
        assert len(parse_database(spec)) == len(db)

    def test_spec_of_instance_rejects_non_json_values(self):
        from repro.relational.database import fact

        db = parse_database(EMPLOYEE_SPEC).insert(
            [fact("Audit", "k", object())]
        )
        with pytest.raises(PayloadError):
            spec_of_instance(db)


# ----------------------------------------------------------------------
# SIGKILL the real server mid-storm (not just SIGTERM drain)
# ----------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_ready(port, deadline_s=30.0) -> None:
    import http.client

    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        try:
            conn = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=2.0
            )
            conn.request("GET", "/healthz")
            if conn.getresponse().status == 200:
                conn.close()
                return
            conn.close()
        except OSError:
            pass
        time.sleep(0.1)
    raise AssertionError("server never became ready")


@pytest.mark.skipif(
    sys.platform == "win32", reason="SIGKILL semantics are POSIX"
)
class TestSigkillCrashRecovery:
    def test_kill9_mid_storm_recovers_every_acked_mutation(
        self, tmp_path
    ):
        import http.client

        data_dir = tmp_path / "data"
        port = _free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )

        def spawn():
            return subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--port", str(port),
                    "--workers", "0",
                    "--data-dir", str(data_dir),
                    "--fsync", "always",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )

        server = spawn()
        try:
            _wait_ready(port)
            conn = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=10.0
            )
            body = json.dumps(EMPLOYEE_SPEC)
            conn.request(
                "PUT", "/v1/db/emp", body=body,
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 200

            acked = []
            stop = threading.Event()

            def storm():
                i = 0
                mutate = http.client.HTTPConnection(
                    "127.0.0.1", port, timeout=10.0
                )
                while not stop.is_set():
                    i += 1
                    payload = json.dumps(
                        {"insert": [["Audit", f"row{i:05d}", "v"]]}
                    )
                    try:
                        mutate.request(
                            "POST", "/v1/db/emp/mutate", body=payload,
                            headers={
                                "Content-Type": "application/json"
                            },
                        )
                        response = mutate.getresponse()
                        parsed = json.loads(response.read() or b"{}")
                        if response.status == 200 and "lsn" in parsed:
                            acked.append((parsed["lsn"], f"row{i:05d}"))
                    except (OSError, http.client.HTTPException):
                        return  # the kill landed

            thread = threading.Thread(target=storm)
            thread.start()
            deadline = time.monotonic() + 20.0
            while len(acked) < 25 and time.monotonic() < deadline:
                time.sleep(0.02)
            os.kill(server.pid, signal.SIGKILL)  # no drain, no mercy
            server.wait(timeout=10.0)
            stop.set()
            thread.join(timeout=10.0)
            assert len(acked) >= 25, "storm never got going"
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10.0)

        # Offline verification and in-process recovery must both hold
        # every acknowledged row.
        report = verify_store(data_dir)
        assert report["ok"], report["problems"]
        max_lsn = max(lsn for lsn, _ in acked)
        assert report["last_lsn"] >= max_lsn
        svc = CQAService(store=_store(data_dir))
        svc.recover()
        status, body, _ = svc.handle_cqa(
            {"db": "emp", "query": "Q(K) :- Audit(K, V)"}
        )
        recovered_rows = {row[0] for row in body["answers"]}
        missing = [
            row for _, row in acked if row not in recovered_rows
        ]
        assert not missing, (
            f"{len(missing)} acknowledged mutation(s) lost: "
            f"{missing[:5]}"
        )
        svc.close()
