"""Tests for CQA over unions of conjunctive queries."""

import pytest

from repro.cqa import (
    answer_frequencies,
    consistent_answers,
    is_consistently_true,
    is_possibly_true,
)
from repro.logic import UnionQuery, atom, boolean_query, cq, vars_
from repro.relational import Database, RelationSchema, Schema, fact
from repro.workloads import employee

X, Y = vars_("x y")


class TestUCQConsistentAnswers:
    def setup_method(self):
        schema = Schema.of(
            RelationSchema("Emp", ("Name", "Salary"), key=("Name",)),
            RelationSchema("Contractor", ("Name", "Rate"), key=("Name",)),
        )
        self.db = Database.from_dict(
            {
                "Emp": [("page", "5K"), ("page", "8K"), ("smith", "3K")],
                "Contractor": [("page", "100"), ("lee", "90")],
            },
            schema=schema,
        )
        from repro.constraints import FunctionalDependency

        self.constraints = (
            FunctionalDependency("Emp", ("Name",), ("Salary",)),
        )
        self.workers = UnionQuery((
            cq([X], [atom("Emp", X, Y)], name="emps"),
            cq([X], [atom("Contractor", X, Y)], name="contractors"),
        ), name="workers")

    def test_union_certain_answers(self):
        answers = consistent_answers(
            self.db, self.constraints, self.workers
        )
        # page is a worker in every repair: via Emp (some salary kept)
        # and via Contractor regardless.
        assert answers == {("page",), ("smith",), ("lee",)}

    def test_union_answer_frequencies(self):
        freqs = dict(answer_frequencies(
            self.db, self.constraints, self.workers
        ))
        assert freqs[("page",)] == 1.0
        assert freqs[("lee",)] == 1.0

    def test_boolean_union(self):
        q = UnionQuery((
            boolean_query([atom("Emp", "nobody", Y)], name="d1"),
            boolean_query([atom("Contractor", "lee", Y)], name="d2"),
        ))
        assert is_consistently_true(self.db, self.constraints, q)
        q_false = UnionQuery((
            boolean_query([atom("Emp", "nobody", Y)], name="d1"),
            boolean_query([atom("Contractor", "nobody", Y)], name="d2"),
        ))
        assert not is_possibly_true(self.db, self.constraints, q_false)

    def test_union_on_paper_employee(self):
        scenario = employee()
        q = UnionQuery((
            cq([X], [atom("Employee", X, Y)], name="all"),
        ))
        answers = consistent_answers(scenario.db, scenario.constraints, q)
        assert answers == {("page",), ("smith",), ("stowe",)}

    def test_union_arity_mismatch_rejected(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            UnionQuery((
                cq([X], [atom("Emp", X, Y)]),
                cq([X, Y], [atom("Contractor", X, Y)]),
            ))
