"""Live telemetry plane: rolling windows, event correlation, SLOs, exposition.

Everything here is deterministic: the rolling instruments, the event
log, and the circuit breakers all share injectable clocks, so window
expiry and state transitions are driven by advancing a fake clock, not
by sleeping.
"""

import json
import time

import pytest

from repro.dispatch import DispatchError, DispatchPolicy, Dispatcher
from repro.errors import BudgetExceededError
from repro.observability import collect, installed
from repro.observability.live import (
    EVENT_KINDS,
    EXIT_SLO_VIOLATION,
    EventLog,
    LivePlane,
    LiveRegistry,
    RollingCounter,
    RollingHistogram,
    current_request_id,
    emit_event,
    evaluate_slos,
    live,
    live_add,
    live_installed,
    live_plane,
    load_slo_config,
    prometheus_text,
    read_events,
    request_scope,
    validate_prometheus,
    write_prometheus,
    write_status_json,
)
from repro.runtime import Budget, FaultPlan, inject, use_budget
from repro.workloads import employee, employee_key_violations


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ----------------------------------------------------------------------
# Rolling instruments
# ----------------------------------------------------------------------


class TestRollingCounter:
    def test_counts_inside_window(self):
        clock = FakeClock()
        c = RollingCounter(window_s=60.0, buckets=60, clock=clock)
        c.add()
        clock.advance(10)
        c.add(2)
        assert c.window_total() == 3
        assert c.lifetime == 3
        assert c.rate_per_s() == pytest.approx(3 / 60.0)

    def test_old_events_expire_lifetime_does_not(self):
        clock = FakeClock()
        c = RollingCounter(window_s=60.0, buckets=60, clock=clock)
        c.add(5)
        clock.advance(59)
        c.add(1)
        assert c.window_total() == 6
        clock.advance(2)  # the first bucket is now outside the window
        assert c.window_total() == 1
        assert c.lifetime == 6

    def test_long_idle_clears_whole_window(self):
        clock = FakeClock()
        c = RollingCounter(window_s=60.0, buckets=60, clock=clock)
        c.add(100)
        clock.advance(3600)  # far beyond the ring: lazy full clear
        assert c.window_total() == 0
        assert c.lifetime == 100

    def test_summary_shape(self):
        c = RollingCounter(clock=FakeClock())
        c.add(4)
        assert c.summary() == {
            "total": 4,
            "window": 4,
            "window_s": 60.0,
            "rate_per_s": pytest.approx(4 / 60.0),
        }


class TestRollingHistogram:
    def test_percentiles_are_exact_and_deterministic(self):
        clock = FakeClock()
        h = RollingHistogram(window_s=60.0, buckets=60, clock=clock)
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(99) == pytest.approx(99.01)
        assert h.window_count() == 100
        assert h.window_sum() == pytest.approx(5050.0)

    def test_window_expiry_drops_old_samples(self):
        clock = FakeClock()
        h = RollingHistogram(window_s=60.0, buckets=60, clock=clock)
        h.observe(1000.0)
        clock.advance(61)
        h.observe(1.0)
        assert h.percentile(99) == pytest.approx(1.0)
        # lifetime stats keep the expired sample
        assert h.count == 2
        assert h.max == 1000.0
        assert h.min == 1.0

    def test_empty_percentile_is_none(self):
        h = RollingHistogram(clock=FakeClock())
        assert h.percentile(50) is None
        assert h.summary()["p99"] is None


class TestLiveRegistry:
    def test_snapshot_shape(self):
        clock = FakeClock()
        r = LiveRegistry(clock=clock)
        r.add("reqs", 2)
        r.observe("lat", 5.0)
        r.gauge("state", "closed")
        clock.advance(3)
        snap = r.snapshot()
        assert snap["uptime_s"] == pytest.approx(3.0)
        assert snap["counters"]["reqs"]["total"] == 2
        assert snap["histograms"]["lat"]["p50"] == pytest.approx(5.0)
        assert snap["gauges"] == {"state": "closed"}
        assert r.op_count == 3
        assert r.counter_total("reqs") == 2
        assert r.counter_window("missing") == 0
        assert r.percentile("lat", 90) == pytest.approx(5.0)


# ----------------------------------------------------------------------
# Event log and request correlation
# ----------------------------------------------------------------------


class TestEventLog:
    def test_seq_is_monotonic_and_kinds_are_tallied(self):
        log = EventLog(clock=FakeClock())
        first = log.emit("request.start")
        second = log.emit("request.end")
        assert second["seq"] == first["seq"] + 1
        assert log.stats()["by_kind"] == {
            "request.end": 1, "request.start": 1,
        }

    def test_unknown_kind_is_rejected(self):
        log = EventLog(clock=FakeClock())
        with pytest.raises(ValueError, match="unknown event kind"):
            log.emit("request.startt")

    def test_ring_is_bounded_but_stats_are_not(self):
        log = EventLog(capacity=3, clock=FakeClock())
        for _ in range(10):
            log.emit("rung.attempt")
        stats = log.stats()
        assert stats["emitted"] == 10
        assert stats["retained"] == 3
        assert [r["seq"] for r in log.records()] == [8, 9, 10]

    def test_file_sink_roundtrips(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        log = EventLog(clock=FakeClock(), sink=sink)
        log.emit("request.start", request_id="r1", semantics="s")
        log.emit("request.end", request_id="r1", outcome="ok")
        log.close()
        records = read_events(str(sink))
        assert [r["kind"] for r in records] == [
            "request.start", "request.end",
        ]
        assert all(r["request_id"] == "r1" for r in records)

    def test_request_scope_nests_and_restores(self):
        assert current_request_id() is None
        with request_scope("outer"):
            assert current_request_id() == "outer"
            with request_scope() as inner:
                assert current_request_id() == inner != "outer"
            assert current_request_id() == "outer"
        assert current_request_id() is None

    def test_scope_id_is_stamped_into_events(self):
        log = EventLog(clock=FakeClock())
        with request_scope("r42"):
            record = log.emit("rung.attempt", engine="fm-sql")
        assert record["request_id"] == "r42"


class TestEventLogSinkRotation:
    """Size-capped rotation of the JSONL sink, and corrupt-line repair
    on read — the parity contract with ``read_trace``."""

    def test_sink_rotates_at_cap_keeping_one_generation(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        # A 1-byte cap forces a rotation after every event: the current
        # file is always freshly empty, the previous event lives in .1.
        log = EventLog(clock=FakeClock(), sink=sink, max_sink_bytes=1)
        log.emit("rung.attempt", engine="fm-sql")
        second = log.emit("rung.ok", engine="fm-sql")
        log.close()
        assert log.rotations == 2
        rotated = read_events(str(sink) + ".1")
        assert [r["kind"] for r in rotated] == ["rung.ok"]
        assert rotated[0]["seq"] == second["seq"]
        assert read_events(str(sink)) == []

    def test_uncapped_sink_never_rotates(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        log = EventLog(clock=FakeClock(), sink=sink)
        for _ in range(100):
            log.emit("rung.attempt")
        log.close()
        assert log.rotations == 0
        assert not (tmp_path / "events.jsonl.1").exists()
        assert len(read_events(str(sink))) == 100

    def test_preexisting_bytes_count_against_the_cap(self, tmp_path):
        # Append mode: a restarted process inherits the file, and the
        # inherited bytes must count or the disk bound doubles.
        sink = tmp_path / "events.jsonl"
        sink.write_bytes(b"x" * 500)
        log = EventLog(clock=FakeClock(), sink=sink, max_sink_bytes=400)
        log.emit("rung.attempt")
        log.close()
        assert log.rotations == 1

    def test_stream_sinks_ignore_the_cap(self):
        import io

        stream = io.StringIO()
        log = EventLog(clock=FakeClock(), sink=stream, max_sink_bytes=1)
        log.emit("rung.attempt")
        log.emit("rung.ok")
        assert log.rotations == 0  # no path to rotate, no error either

    def test_cap_validation(self):
        with pytest.raises(ValueError, match="max_sink_bytes"):
            EventLog(clock=FakeClock(), sink=None, max_sink_bytes=0)

    def test_read_events_skips_corrupt_and_non_object_lines(
        self, tmp_path
    ):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"seq": 1, "kind": "request.start", "request_id": "r1"}\n'
            "\n"  # blank: skipped silently
            "[1, 2, 3]\n"  # valid JSON, not an object: skipped
            '{"seq": 2, "kind": "request.end", "request_id": "r1"}\n'
            '{"seq": 3, "kind": "rung.a'  # truncated trailing write
        )
        records = read_events(str(path))
        assert [r["seq"] for r in records] == [1, 2]
        assert [r["kind"] for r in records] == [
            "request.start", "request.end",
        ]


class TestDispatchCorrelation:
    """Real dispatches produce a correlated event log."""

    def test_every_event_carries_its_request_id(self):
        scenario = employee()
        with live() as plane:
            d = Dispatcher()
            for _ in range(3):
                d.dispatch(
                    scenario.db, scenario.constraints,
                    scenario.queries["Q2"],
                )
        records = plane.events.records()
        assert records, "dispatch emitted no events"
        assert all(r["request_id"] is not None for r in records)
        by_request = {}
        for r in records:
            by_request.setdefault(r["request_id"], []).append(r["kind"])
        assert len(by_request) == 3
        for kinds in by_request.values():
            assert kinds[0] == "request.start"
            assert kinds[-1] == "request.end"
            assert "rung.ok" in kinds

    def test_request_start_carries_conflict_shape_stats(self):
        scenario = employee()
        with live() as plane:
            Dispatcher().dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q1"]
            )
        (start,) = plane.events.records(kind="request.start")
        conflicts = start["conflicts"]
        # Employee has one duplicate-key pair: page/5K vs page/8K.
        assert conflicts["edges"] == 1
        assert conflicts["max_component_size"] == 2
        assert conflicts["conflicting_nodes"] == 2
        assert conflicts["nodes"] == 4

    def test_span_ids_link_events_to_the_collector_trace(self):
        scenario = employee()
        with collect() as c, live() as plane:
            Dispatcher().dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q2"]
            )
        span_ids = {r["span_id"] for r in plane.events.records()}
        assert None not in span_ids
        trace_ids = set()

        def walk(span):
            trace_ids.add(span.span_id)
            for child in span.children:
                trace_ids.add(child.span_id)
                walk(child)

        for root in c.spans:
            walk(root)
        assert span_ids <= trace_ids

    def test_request_id_lands_in_the_dispatch_span(self):
        scenario = employee()
        with collect() as c, live():
            Dispatcher().dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q2"]
            )
        (request_span,) = c.find("dispatch.request")
        assert str(
            request_span.attributes["request_id"]
        ).startswith("r")

    def test_events_are_counted_on_the_collector_too(self):
        scenario = employee()
        with collect() as c, live():
            Dispatcher().dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q2"]
            )
        assert c.counter("dispatch.events.request.start") == 1
        assert c.counter("dispatch.events.request.end") == 1


class TestBreakerTransitionEvents:
    """Satellite: the full breaker cycle is observable in the event log
    with monotonic timestamps under one shared injectable clock."""

    def _failing_then_healthy_dispatcher(self, clock):
        policy = DispatchPolicy(
            ladder=("fm-sql", "fo-mem"),
            failure_threshold=2,
            cooldown_s=30.0,
        )
        return Dispatcher(policy, clock=clock)

    def test_closed_open_halfopen_closed_cycle(self):
        clock = FakeClock()
        scenario = employee()
        plane = LivePlane(clock=clock)
        with live(plane):
            d = self._failing_then_healthy_dispatcher(clock)
            with inject(FaultPlan(seed=3, sqlite_failure_rate=1.0)):
                d.dispatch(  # failure 1 (served by fo-mem)
                    scenario.db, scenario.constraints,
                    scenario.queries["Q2"],
                )
                d.dispatch(  # failure 2: trips CLOSED -> OPEN
                    scenario.db, scenario.constraints,
                    scenario.queries["Q2"],
                )
            clock.advance(31)  # past the cooldown: next probe half-opens
            d.dispatch(  # healthy again: HALF_OPEN probe succeeds
                scenario.db, scenario.constraints, scenario.queries["Q2"]
            )
        transitions = plane.events.records(kind="breaker.transition")
        fm = [t for t in transitions if t["engine"] == "fm-sql"]
        assert [(t["from_state"], t["to_state"]) for t in fm] == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        stamps = [t["ts"] for t in fm]
        assert stamps == sorted(stamps)
        assert stamps[0] < stamps[1]  # the cooldown advanced the clock
        seqs = [t["seq"] for t in fm]
        assert seqs == sorted(seqs)

    def test_breaker_state_gauges_track_the_cycle(self):
        clock = FakeClock()
        scenario = employee()
        plane = LivePlane(clock=clock)
        with live(plane):
            d = self._failing_then_healthy_dispatcher(clock)
            with inject(FaultPlan(seed=3, sqlite_failure_rate=1.0)):
                d.dispatch(
                    scenario.db, scenario.constraints,
                    scenario.queries["Q2"],
                )
                d.dispatch(
                    scenario.db, scenario.constraints,
                    scenario.queries["Q2"],
                )
            assert (
                plane.registry.gauge_value("dispatch.breaker.state.fm-sql")
                == "open"
            )
            assert plane.status()["breakers"]["fm-sql"] == "open"
            clock.advance(31)
            d.dispatch(
                scenario.db, scenario.constraints, scenario.queries["Q2"]
            )
            assert (
                plane.registry.gauge_value("dispatch.breaker.state.fm-sql")
                == "closed"
            )


class TestBudgetAndDegradationEvents:
    def test_budget_exhaustion_emits_an_event(self):
        with live() as plane:
            budget = Budget(max_steps=3)
            with use_budget(budget):
                with pytest.raises(BudgetExceededError):
                    for _ in range(10):
                        budget.checkpoint()
        (event,) = plane.events.records(kind="budget.exhausted")
        assert event["reason"] == "steps"
        assert event["steps"] == 4

    def test_degraded_answers_count_as_served(self):
        scenario = employee()
        policy = DispatchPolicy(
            ladder=("enumerate", "certain-core")
        )
        with live() as plane:
            with inject(FaultPlan(seed=12, starve_steps_after=5)):
                result = Dispatcher(policy).dispatch(
                    scenario.db, scenario.constraints,
                    scenario.queries["Q1"],
                )
        assert not result.complete
        status = plane.status()
        assert status["requests"]["degraded"] == 1
        assert status["requests"]["availability"] == 1.0
        (end,) = plane.events.records(kind="request.end")
        assert end["outcome"] == "degraded"

    def test_failed_request_counts_as_error(self):
        scenario = employee()
        policy = DispatchPolicy(ladder=("fm-sql",))
        with live() as plane:
            with inject(FaultPlan(seed=5, sqlite_failure_rate=1.0)):
                with pytest.raises(DispatchError):
                    Dispatcher(policy).dispatch(
                        scenario.db, scenario.constraints,
                        scenario.queries["Q2"],
                    )
        status = plane.status()
        assert status["requests"]["error"] == 1
        assert status["requests"]["availability"] == 0.0
        (end,) = plane.events.records(kind="request.end")
        assert end["outcome"] == "error"
        assert "error" in end


# ----------------------------------------------------------------------
# Status document, exposition, SLOs
# ----------------------------------------------------------------------


def _seeded_status(ok=18, degraded=1, error=1, p99_ms=12.0):
    clock = FakeClock()
    plane = LivePlane(clock=clock)
    for _ in range(ok):
        plane.registry.add("dispatch.requests")
        plane.registry.add("dispatch.requests.ok")
    for _ in range(degraded):
        plane.registry.add("dispatch.requests")
        plane.registry.add("dispatch.requests.degraded")
    for _ in range(error):
        plane.registry.add("dispatch.requests")
        plane.registry.add("dispatch.requests.error")
    plane.registry.observe("dispatch.latency_ms", p99_ms)
    plane.registry.gauge("dispatch.breaker.state.fm-sql", "closed")
    clock.advance(10)
    return plane.status()


class TestStatusAndExposition:
    def test_status_availability_counts_degraded_as_served(self):
        status = _seeded_status(ok=18, degraded=1, error=1)
        assert status["requests"]["total"] == 20
        assert status["requests"]["availability"] == pytest.approx(0.95)
        assert status["breakers"] == {"fm-sql": "closed"}

    def test_prometheus_output_parses_line_by_line(self):
        text = prometheus_text(_seeded_status())
        assert validate_prometheus(text) > 10
        assert "repro_dispatch_requests_total 20" in text
        assert (
            'repro_dispatch_breaker_state{engine="fm-sql",state="closed"} 1'
            in text
        )
        assert "repro_dispatch_availability 0.95" in text

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed sample"):
            validate_prometheus("this is { not valid\n")

    def test_writers_are_atomic_and_roundtrip(self, tmp_path):
        status = _seeded_status()
        json_path = tmp_path / "status.json"
        prom_path = tmp_path / "metrics.prom"
        write_status_json(json_path, status)
        write_prometheus(prom_path, status)
        loaded = json.loads(json_path.read_text())
        assert loaded["requests"]["total"] == 20
        validate_prometheus(prom_path.read_text())
        assert not list(tmp_path.glob("*.tmp"))


class TestSlo:
    def test_availability_violation_and_burn(self):
        slos = [
            {"name": "avail", "kind": "availability", "objective": 0.99},
        ]
        results = evaluate_slos(slos, _seeded_status(ok=18, error=2,
                                                     degraded=0))
        (r,) = results
        assert not r["ok"]
        assert r["observed"] == pytest.approx(0.9)
        assert r["burn"] == pytest.approx(10.0)

    def test_latency_objective(self):
        slos = [
            {"name": "p99", "kind": "latency",
             "metric": "dispatch.latency_ms", "percentile": 99,
             "target_ms": 10.0},
        ]
        (r,) = evaluate_slos(slos, _seeded_status(p99_ms=12.0))
        assert not r["ok"]
        assert r["observed"] == pytest.approx(12.0)
        (r,) = evaluate_slos(slos, _seeded_status(p99_ms=8.0))
        assert r["ok"]

    def test_no_traffic_burns_no_budget(self):
        slos = [
            {"name": "avail", "kind": "availability", "objective": 0.99},
        ]
        (r,) = evaluate_slos(slos, _seeded_status(ok=0, degraded=0,
                                                  error=0))
        assert r["ok"]
        assert r["observed"] is None

    def test_config_validation(self, tmp_path):
        bad = tmp_path / "slo.json"
        bad.write_text('{"slos": [{"name": "x", "kind": "wibble"}]}')
        with pytest.raises(ValueError, match="unknown kind"):
            load_slo_config(str(bad))
        bad.write_text('{"slos": []}')
        with pytest.raises(ValueError, match="non-empty"):
            load_slo_config(str(bad))
        good = tmp_path / "ok.json"
        good.write_text(
            '{"slos": [{"name": "a", "kind": "availability",'
            ' "objective": 0.95}]}'
        )
        assert len(load_slo_config(str(good))) == 1

    def test_committed_slo_config_is_valid(self):
        slos = load_slo_config("benchmarks/slo.json")
        kinds = {s["kind"] for s in slos}
        assert kinds == {"availability", "latency"}


# ----------------------------------------------------------------------
# CLI: dispatch --telemetry, obs status / watch / slo
# ----------------------------------------------------------------------


class TestTelemetryCli:
    @pytest.fixture
    def employee_csv(self, tmp_path):
        path = tmp_path / "emp.csv"
        path.write_text(
            "Name,Salary\npage,5K\npage,8K\nsmith,3K\nstowe,7K\n"
        )
        return str(path)

    def _dispatch(self, employee_csv, tele_dir, *extra):
        from repro.cli import main

        return main([
            "dispatch", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--query", "Q(X) :- Employee(X, Y)",
            "--telemetry", tele_dir, *extra,
        ])

    def test_dispatch_writes_correlated_telemetry(
        self, employee_csv, tmp_path, capsys
    ):
        tele = str(tmp_path / "tele")
        assert self._dispatch(employee_csv, tele, "--repeat", "3") == 0
        capsys.readouterr()
        events = read_events(f"{tele}/events.jsonl")
        assert len({r["request_id"] for r in events}) == 3
        assert all(r["request_id"] for r in events)
        status = json.loads((tmp_path / "tele/status.json").read_text())
        assert status["requests"]["total"] == 3
        assert status["requests"]["availability"] == 1.0
        validate_prometheus((tmp_path / "tele/metrics.prom").read_text())

    def test_obs_status_renders_breakers_and_percentiles(
        self, employee_csv, tmp_path, capsys
    ):
        from repro.cli import main

        tele = str(tmp_path / "tele")
        self._dispatch(employee_csv, tele)
        capsys.readouterr()
        assert main(["obs", "status", f"{tele}/status.json"]) == 0
        out = capsys.readouterr().out
        assert "fm-sql" in out and "closed" in out
        assert "p50=" in out and "p99=" in out
        assert main(["obs", "status", f"{tele}/status.json",
                     "--prom"]) == 0
        validate_prometheus(capsys.readouterr().out)

    def test_obs_watch_single_render(
        self, employee_csv, tmp_path, capsys
    ):
        from repro.cli import main

        tele = str(tmp_path / "tele")
        self._dispatch(employee_csv, tele)
        capsys.readouterr()
        assert main(["obs", "watch", f"{tele}/status.json",
                     "--count", "1"]) == 0
        assert "live status" in capsys.readouterr().out

    def test_obs_slo_check_exits_7_under_fault_plan(
        self, employee_csv, tmp_path, capsys
    ):
        from repro.cli import main

        tele = str(tmp_path / "tele")
        rc = self._dispatch(
            employee_csv, tele,
            "--engine", "fm-sql",
            "--fault-sqlite-rate", "1.0",
            "--repeat", "4",
        )
        assert rc == 2  # every request failed outright
        capsys.readouterr()
        rc = main([
            "obs", "slo", "--config", "benchmarks/slo.json",
            "--status", f"{tele}/status.json", "--check",
        ])
        out = capsys.readouterr()
        assert rc == EXIT_SLO_VIOLATION
        assert "VIOLATED" in out.out

    def test_obs_slo_check_passes_on_healthy_run(
        self, employee_csv, tmp_path, capsys
    ):
        from repro.cli import main

        tele = str(tmp_path / "tele")
        self._dispatch(employee_csv, tele, "--repeat", "3")
        capsys.readouterr()
        rc = main([
            "obs", "slo", "--config", "benchmarks/slo.json",
            "--status", f"{tele}/status.json", "--check",
        ])
        assert rc == 0
        assert "VIOLATED" not in capsys.readouterr().out


# ----------------------------------------------------------------------
# Overhead guarantees
# ----------------------------------------------------------------------


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


class TestLiveOverhead:
    """The live plane must not break the <5% instrumentation budget."""

    def test_uninstalled_free_functions_are_early_returns(self):
        assert not live_installed()
        assert live_plane() is None
        live_add("x")
        emit_event("request.start")  # must be a silent no-op

    def test_live_overhead_under_five_percent(self):
        """Op-count budget, mirroring the disabled-collector test:
        (live ops per workload x per-op enabled cost) < 5% of the
        workload's wall time.  Holds by construction — live hooks sit
        at request/rung granularity, never in per-tuple loops."""
        from repro.repairs import s_repairs

        scenario = employee_key_violations(5, 6, 2, seed=7)
        wall = min(
            _timed(
                lambda: s_repairs(scenario.db, scenario.constraints)
            )
            for _ in range(3)
        )

        # Live ops emitted by the repair workload (hot path: zero) plus
        # a dispatch on top, which is where the live hooks live.
        dispatch_scenario = employee()
        with live() as plane:
            s_repairs(scenario.db, scenario.constraints)
            hot_loop_ops = (
                plane.registry.op_count + plane.events.stats()["emitted"]
            )
            Dispatcher().dispatch(
                dispatch_scenario.db,
                dispatch_scenario.constraints,
                dispatch_scenario.queries["Q2"],
            )
            total_ops = (
                plane.registry.op_count + plane.events.stats()["emitted"]
            )
        assert hot_loop_ops == 0, (
            "repair hot loops must not touch the live plane"
        )

        # Per-op enabled costs, amortised over tight loops.
        loops = 5000
        bench = LiveRegistry()
        t0 = time.perf_counter()
        for _ in range(loops):
            bench.add("x")
        add_cost = (time.perf_counter() - t0) / loops
        log = EventLog()
        t0 = time.perf_counter()
        for _ in range(loops):
            log.emit("rung.attempt", engine="x")
        emit_cost = (time.perf_counter() - t0) / loops

        budget = total_ops * max(add_cost, emit_cost)
        assert budget < 0.05 * wall, (
            f"live instrumentation cost {budget * 1e6:.1f}us exceeds 5% "
            f"of workload {wall * 1e6:.1f}us ({total_ops} live ops)"
        )
