"""Tests for the observability layer: spans, metrics, export, overhead."""

import io
import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.observability import (
    Collector,
    MetricsRegistry,
    add,
    annotate,
    build_trees,
    collect,
    current_span,
    flat_snapshot,
    gauge,
    install,
    installed,
    observe,
    read_trace,
    span,
    uninstall,
    write_trace,
)
from repro.observability.spans import _NULL_SPAN


class TestSpans:
    def test_nesting_builds_a_tree(self):
        with collect() as c:
            with span("outer"):
                with span("inner-a"):
                    pass
                with span("inner-b"):
                    with span("leaf"):
                        pass
        assert [s.name for s in c.spans] == ["outer"]
        (outer,) = c.spans
        assert [s.name for s in outer.children] == ["inner-a", "inner-b"]
        assert [s.name for s in outer.children[1].children] == ["leaf"]

    def test_durations_are_positive_and_contain_children(self):
        with collect() as c:
            with span("outer"):
                with span("inner"):
                    time.sleep(0.005)
        (outer,) = c.spans
        (inner,) = outer.children
        assert inner.duration >= 0.005
        assert outer.duration >= inner.duration

    def test_attributes_and_annotate(self):
        with collect() as c:
            with span("work", size=3):
                annotate(result="ok")
        (s,) = c.spans
        assert s.attributes == {"size": 3, "result": "ok"}

    def test_current_span_tracks_innermost(self):
        with collect():
            with span("outer"):
                with span("inner"):
                    assert current_span().name == "inner"
                assert current_span().name == "outer"

    def test_error_is_recorded_and_propagates(self):
        with collect() as c:
            with pytest.raises(ValueError):
                with span("boom"):
                    raise ValueError("nope")
        (s,) = c.spans
        assert "ValueError" in s.attributes["error"]

    def test_counter_deltas_attach_to_each_span(self):
        with collect() as c:
            with span("outer"):
                add("work.items", 2)
                with span("inner"):
                    add("work.items", 3)
        (outer,) = c.spans
        (inner,) = outer.children
        assert inner.metrics["work.items"] == 3
        assert outer.metrics["work.items"] == 5  # includes the child's

    def test_threads_get_independent_span_stacks(self):
        with collect() as c:
            def work(i):
                with span(f"thread-{i}"):
                    time.sleep(0.001)
            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(work, range(8)))
        # Each thread's spans are roots (no cross-thread nesting).
        assert sorted(s.name for s in c.spans) == sorted(
            f"thread-{i}" for i in range(8)
        )


class TestMetrics:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.add("hits", 2)
        registry.add("hits")
        registry.gauge("depth", 7)
        registry.observe("latency", 0.25)
        registry.observe("latency", 0.75)
        snap = registry.snapshot()
        assert snap["hits"] == 3
        assert snap["depth"] == 7
        assert snap["latency.count"] == 2
        assert snap["latency.sum"] == pytest.approx(1.0)
        assert snap["latency.min"] == pytest.approx(0.25)
        assert snap["latency.max"] == pytest.approx(0.75)

    def test_counter_thread_safety(self):
        with collect() as c:
            def work(_):
                for _i in range(1000):
                    add("racy")
            with ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(work, range(8)))
        assert c.counter("racy") == 8000

    def test_reset_isolation(self):
        registry = MetricsRegistry()
        registry.add("x", 5)
        registry.reset()
        assert registry.snapshot() == {}
        # Separate collectors never share state.
        with collect() as first:
            add("shared", 1)
        with collect() as second:
            pass
        assert first.counter("shared") == 1
        assert second.counter("shared") == 0

    def test_collector_reset(self):
        with collect() as c:
            with span("s"):
                add("n", 1)
            c.reset()
            assert c.spans == [] and c.snapshot() == {}

    def test_observe_and_gauge_module_functions(self):
        with collect() as c:
            observe("timing", 0.5)
            assert "timing.count" in c.snapshot()


class TestInstall:
    def test_collect_installs_and_uninstalls(self):
        assert installed() is None
        with collect() as c:
            assert installed() is c
        assert installed() is None

    def test_installs_nest(self):
        outer, inner = Collector(), Collector()
        install(outer)
        try:
            add("n", 1)
            install(inner)
            try:
                add("n", 1)
            finally:
                uninstall()
            add("n", 1)
        finally:
            uninstall()
        assert outer.counter("n") == 2
        assert inner.counter("n") == 1
        assert installed() is None

    def test_uninstall_when_empty_is_safe(self):
        assert uninstall() is None


class TestExport:
    def _collected(self):
        with collect() as c:
            with span("outer", kind="test"):
                add("outer.work", 4)
                with span("inner"):
                    pass
        return c

    def test_jsonl_round_trip(self, tmp_path):
        c = self._collected()
        path = tmp_path / "trace.jsonl"
        lines = c.write_trace(path)
        # 2 spans + 1 metrics line, each valid JSON.
        assert lines == 3
        records = read_trace(path)
        assert len(records) == 3
        roots = build_trees(records)
        assert len(roots) == 1
        assert roots[0]["name"] == "outer"
        assert roots[0]["attributes"] == {"kind": "test"}
        assert roots[0]["metrics"]["outer.work"] == 4
        (child,) = roots[0]["children"]
        assert child["name"] == "inner"
        metrics_lines = [r for r in records if r.get("kind") == "metrics"]
        assert metrics_lines[0]["snapshot"]["outer.work"] == 4

    def test_write_to_file_object(self):
        c = self._collected()
        buf = io.StringIO()
        c.write_trace(buf)
        for line in buf.getvalue().splitlines():
            json.loads(line)

    def test_non_serialisable_attributes_fall_back_to_repr(self, tmp_path):
        with collect() as c:
            with span("s", payload=object()):
                pass
        path = tmp_path / "t.jsonl"
        c.write_trace(path)
        assert "object" in read_trace(path)[0]["attributes"]["payload"]

    def test_summary_mentions_spans_and_counters(self):
        c = self._collected()
        text = c.summary()
        assert "outer" in text and "inner" in text
        assert "outer.work" in text

    def test_flat_snapshot(self):
        c = self._collected()
        assert flat_snapshot(c.registry)["outer.work"] == 4

    def test_gauges_appear_in_every_export_path(self, tmp_path):
        """Regression guard: gauges ride alongside counters/histograms
        in flat_snapshot, summary_table, and the JSONL metrics line."""
        with collect() as c:
            with span("outer"):
                add("outer.work", 2)
                gauge("outer.depth", 7)
                observe("outer.size", 3.0)
        snap = flat_snapshot(c.registry)
        assert snap["outer.depth"] == 7
        assert snap["outer.work"] == 2
        assert snap["outer.size.count"] == 1
        text = c.summary()
        assert "outer.depth" in text and "7" in text
        path = tmp_path / "t.jsonl"
        c.write_trace(path)
        metrics_lines = [
            r for r in read_trace(path) if r.get("kind") == "metrics"
        ]
        assert metrics_lines[0]["snapshot"]["outer.depth"] == 7

    def test_stale_tmp_files_are_swept_on_next_write(self, tmp_path):
        """A writer that died between write and rename leaves a ``.tmp``
        orphan; the next write to the same path must remove it (both the
        legacy fixed name and pid-unique names), without touching
        unrelated files."""
        c = self._collected()
        final = tmp_path / "trace.jsonl"
        legacy_orphan = tmp_path / "trace.jsonl.tmp"
        pid_orphan = tmp_path / "trace.jsonl.99999.tmp"
        unrelated = tmp_path / "trace.jsonl.backup.tmp"
        other_file = tmp_path / "other.jsonl.tmp"
        for orphan in (legacy_orphan, pid_orphan, unrelated, other_file):
            orphan.write_text("{}\n")
        c.write_trace(final)
        assert final.exists()
        assert not legacy_orphan.exists()
        assert not pid_orphan.exists()
        assert unrelated.exists()  # not our naming scheme
        assert other_file.exists()  # different trace path
        assert read_trace(final)  # the real trace is intact

    def test_no_tmp_file_survives_a_successful_write(self, tmp_path):
        c = self._collected()
        final = tmp_path / "trace.jsonl"
        c.write_trace(final)
        c.write_trace(final)  # second write sweeps + replaces cleanly
        leftovers = [
            p for p in tmp_path.iterdir() if p.name.endswith(".tmp")
        ]
        assert leftovers == []


class TestDisabledOverhead:
    """The <5% guarantee: uninstrumented runs barely pay for the hooks."""

    def test_disabled_span_is_shared_null_singleton(self):
        assert installed() is None
        s = span("anything", attr=1)
        assert s is _NULL_SPAN
        assert s is span("other")
        with s:
            annotate(ignored=True)  # no-op, must not raise

    def test_disabled_overhead_under_five_percent(self):
        """Event-count budget: (events x per-event disabled cost) < 5%.

        Comparing two full timed runs (on/off) is noisy; instead we
        count how many instrumentation events a real workload emits,
        measure the per-event disabled cost in a tight loop, and check
        the product against the workload's wall time.
        """
        from repro.repairs import s_repairs
        from repro.workloads import employee_key_violations

        scenario = employee_key_violations(5, 6, 2, seed=7)

        # Count events with a collector installed.
        with collect() as c:
            s_repairs(scenario.db, scenario.constraints)
        n_spans = c.tracer.span_count()
        n_ops = c.registry.op_count

        # Workload wall time with instrumentation disabled (best of 3).
        assert installed() is None
        wall = min(
            _timed(lambda: s_repairs(scenario.db, scenario.constraints))
            for _ in range(3)
        )

        # Per-event disabled costs, amortised over tight loops.
        loops = 20000
        t0 = time.perf_counter()
        for _ in range(loops):
            with span("x", a=1):
                pass
        span_cost = (time.perf_counter() - t0) / loops
        t0 = time.perf_counter()
        for _ in range(loops):
            add("x", 1)
        add_cost = (time.perf_counter() - t0) / loops

        budget = n_spans * span_cost + n_ops * add_cost
        assert budget < 0.05 * wall, (
            f"disabled instrumentation cost {budget * 1e6:.1f}us exceeds 5% "
            f"of workload {wall * 1e6:.1f}us "
            f"({n_spans} spans, {n_ops} metric ops)"
        )


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
