"""Tests for data cleaning: CFD repair, quality answers, entity resolution."""

import pytest

from repro.cleaning import (
    MatchingDependency,
    QualityContext,
    clean,
    edit_distance,
    quality_answer_support,
    quality_answers,
    resolve,
    similarity,
)
from repro.constraints import FunctionalDependency, WILDCARD, cfd
from repro.errors import ConstraintError
from repro.logic import atom, cq, vars_
from repro.relational import Database, RelationSchema, Schema, fact
from repro.workloads import customer_cfd, employee

X, Y = vars_("x y")


class TestSimilarity:
    def test_edit_distance(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "abc") == 0

    def test_similarity_range(self):
        assert similarity("smith", "smith") == 1.0
        assert similarity("smith", "smyth") == pytest.approx(0.8)
        assert 0.0 <= similarity("a", "xyz") <= 1.0

    def test_similarity_case_insensitive(self):
        assert similarity("Smith", "smith") == 1.0

    def test_non_strings_by_equality(self):
        assert similarity(5, 5) == 1.0
        assert similarity(5, 6) == 0.0


class TestCFDCleaning:
    def test_paper_cfd_cleaned(self):
        scenario = customer_cfd()
        fd1, fd2, phi = scenario.constraints
        result = clean(scenario.db, (phi,))
        assert result.cost >= 1
        assert phi.is_satisfied(result.cleaned)
        # The plain FDs were satisfied and must remain so.
        assert fd1.is_satisfied(result.cleaned)

    def test_plain_fd_plurality(self):
        db = Database.from_dict({
            "R": [("k", 1, "x"), ("k", 1, "y"), ("k", 2, "z")],
        })
        fd = FunctionalDependency("R", ("a0",), ("a1",))
        result = clean(db, (fd,))
        assert fd.is_satisfied(result.cleaned)
        values = {row[1] for row in result.cleaned.relation("R")}
        assert values == {1}  # plurality value kept

    def test_constant_rhs_pattern_overwrite(self):
        db = Database.from_dict({
            "R": [("44", "york"), ("44", "leeds"), ("01", "nyc")],
        })
        constraint = cfd(
            "R", ("a0",), ("a1",), [(("44",), ("york",))]
        )
        result = clean(db, (constraint,))
        assert constraint.is_satisfied(result.cleaned)
        changed = {c.old_value for c in result.changes}
        assert changed == {"leeds"}

    def test_clean_consistent_is_noop(self):
        scenario = employee()
        db = scenario.db.delete([fact("Employee", "page", "8K")])
        result = clean(db, scenario.constraints)
        assert result.cost == 0
        assert result.cleaned == db

    def test_unsupported_constraint_rejected(self):
        from repro.constraints import DenialConstraint

        db = Database.from_dict({"R": [(1,)]})
        dc = DenialConstraint((atom("R", X),))
        with pytest.raises(ConstraintError):
            clean(db, (dc,))

    def test_change_log_consistent_with_instances(self):
        scenario = employee()
        result = clean(scenario.db, scenario.constraints)
        assert scenario.constraints[0].is_satisfied(result.cleaned)
        for change in result.changes:
            assert change.old_value != change.new_value


class TestQualityAnswers:
    def test_quality_answers_are_consistent_answers(self):
        scenario = employee()
        context = QualityContext(scenario.constraints)
        q = scenario.queries["Q1"]
        assert quality_answers(scenario.db, context, q) == {
            ("smith", "3K"), ("stowe", "7K"),
        }

    def test_tuple_filter_removes_low_quality(self):
        scenario = employee()

        def not_page(f):
            return f.values[0] != "page"

        context = QualityContext(
            scenario.constraints, tuple_filter=not_page
        )
        q = scenario.queries["Q2"]
        assert quality_answers(scenario.db, context, q) == {
            ("smith",), ("stowe",),
        }

    def test_no_constraints_passthrough(self):
        scenario = employee()
        context = QualityContext(())
        q = scenario.queries["Q2"]
        assert quality_answers(scenario.db, context, q) == {
            ("smith",), ("stowe",), ("page",),
        }

    def test_support(self):
        scenario = employee()
        context = QualityContext(scenario.constraints)
        support = dict(
            quality_answer_support(
                scenario.db, context, scenario.queries["Q1"]
            )
        )
        assert support[("page", "5K")] == 0.5


class TestEntityResolution:
    def setup_method(self):
        self.schema = Schema.of(
            RelationSchema("P", ("Name", "Phone", "Address")),
        )

    def test_similar_names_merge_address(self):
        db = Database.from_dict(
            {
                "P": [
                    ("John Smith", "555", "10 Main St."),
                    ("Jon Smith", "555", "10 Main Street"),
                    ("Alice Wu", "111", "2 Elm St."),
                ],
            },
            schema=self.schema,
        )
        md = MatchingDependency(
            "P", ("Name", "Phone"), ("Address",), threshold=0.75
        )
        result = resolve(db, (md,))
        assert result.merges
        addresses = {
            row[2] for row in result.resolved.relation("P")
            if "Smith" in row[0]
        }
        assert len(addresses) == 1
        assert addresses == {"10 Main Street"}  # longer value wins

    def test_duplicate_groups(self):
        db = Database.from_dict(
            {
                "P": [
                    ("John Smith", "555", "10 Main St."),
                    ("Jon Smith", "555", "10 Main Street"),
                ],
            },
            schema=self.schema,
        )
        md = MatchingDependency(
            "P", ("Name",), ("Address",), threshold=0.75
        )
        result = resolve(db, (md,))
        groups = result.duplicate_groups()
        assert len(groups) == 1
        assert len(groups[0]) == 2

    def test_dissimilar_untouched(self):
        db = Database.from_dict(
            {
                "P": [
                    ("John Smith", "555", "10 Main St."),
                    ("Alice Wu", "111", "2 Elm St."),
                ],
            },
            schema=self.schema,
        )
        md = MatchingDependency("P", ("Name",), ("Address",))
        result = resolve(db, (md,))
        assert not result.merges
        assert result.resolved == db

    def test_md_validation(self):
        with pytest.raises(ConstraintError):
            MatchingDependency("P", ("Name",), ("Name",))
        with pytest.raises(ConstraintError):
            MatchingDependency("P", ("Name",), ("Phone",), threshold=0.0)
