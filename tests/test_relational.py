"""Tests for the relational substrate: schemas, facts, databases, NULLs."""

import pickle

import pytest

from repro.errors import SchemaError
from repro.relational import (
    NULL,
    Database,
    Fact,
    LabeledNull,
    RelationSchema,
    Schema,
    fact,
    is_labeled_null,
    is_null,
)


class TestNulls:
    def test_null_is_singleton(self):
        from repro.relational.nulls import NullType

        assert NullType() is NULL

    def test_null_repr(self):
        assert repr(NULL) == "NULL"

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("NULL")

    def test_null_survives_pickle(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL

    def test_null_usable_in_sets(self):
        assert len({NULL, NULL}) == 1

    def test_labeled_null_equality(self):
        assert LabeledNull("n1") == LabeledNull("n1")
        assert LabeledNull("n1") != LabeledNull("n2")
        assert is_labeled_null(LabeledNull("n1"))
        assert not is_labeled_null(NULL)

    def test_null_sorts(self):
        values = sorted([3, NULL, 1], key=lambda v: (is_null(v) is False, repr(v)))
        assert values[0] is NULL


class TestSchema:
    def test_relation_schema_positions(self):
        rel = RelationSchema("Employee", ("Name", "Salary"), key=("Name",))
        assert rel.arity == 2
        assert rel.position("Salary") == 1
        assert rel.positions(("Salary", "Name")) == (1, 0)
        assert rel.key_positions() == (0,)
        assert rel.nonkey_attributes() == ("Salary",)

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "a"))

    def test_key_must_exist(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "b"), key=("c",))

    def test_unknown_attribute(self):
        rel = RelationSchema("R", ("a", "b"))
        with pytest.raises(SchemaError):
            rel.position("z")

    def test_schema_lookup(self):
        schema = Schema.of(RelationSchema("R", ("a",)))
        assert "R" in schema
        assert "S" not in schema
        with pytest.raises(SchemaError):
            schema.relation("S")

    def test_schema_duplicate_relation(self):
        with pytest.raises(SchemaError):
            Schema.of(RelationSchema("R", ("a",)), RelationSchema("R", ("b",)))

    def test_schema_merge(self):
        s1 = Schema.of(RelationSchema("R", ("a",)))
        s2 = Schema.of(RelationSchema("S", ("b",)))
        merged = s1.merged_with(s2)
        assert merged.names() == ("R", "S")

    def test_schema_merge_conflict(self):
        s1 = Schema.of(RelationSchema("R", ("a",)))
        s2 = Schema.of(RelationSchema("R", ("a", "b")))
        with pytest.raises(SchemaError):
            s1.merged_with(s2)


class TestDatabase:
    def setup_method(self):
        self.db = Database.from_dict({
            "Supply": [("C1", "R1", "I1"), ("C2", "R2", "I2"),
                       ("C2", "R1", "I3")],
            "Articles": [("I1",), ("I2",)],
        })

    def test_sizes(self):
        assert len(self.db) == 5
        assert len(self.db.relation("Supply")) == 3
        assert len(self.db.relation("Articles")) == 2

    def test_tids_are_stable(self):
        f = fact("Supply", "C1", "R1", "I1")
        tid = self.db.tid_of(f)
        assert self.db.fact_by_tid(tid) == f

    def test_membership(self):
        assert fact("Articles", "I1") in self.db
        assert fact("Articles", "I3") not in self.db

    def test_delete_preserves_tids(self):
        f = fact("Supply", "C2", "R1", "I3")
        tid_kept = self.db.tid_of(fact("Supply", "C1", "R1", "I1"))
        smaller = self.db.delete([f])
        assert len(smaller) == 4
        assert f not in smaller
        assert smaller.fact_by_tid(tid_kept) == fact("Supply", "C1", "R1", "I1")
        # The original is untouched.
        assert f in self.db

    def test_insert_assigns_fresh_tids(self):
        bigger = self.db.insert([fact("Articles", "I3")])
        assert len(bigger) == 6
        assert fact("Articles", "I3") in bigger
        # Re-inserting an existing fact is a no-op.
        same = bigger.insert([fact("Articles", "I3")])
        assert len(same) == 6

    def test_duplicates_collapse(self):
        db = Database.from_dict({"R": [(1,), (1,), (2,)]})
        assert len(db) == 2

    def test_symmetric_difference(self):
        repaired = self.db.delete([fact("Supply", "C2", "R1", "I3")])
        diff = self.db.symmetric_difference(repaired)
        assert diff == frozenset({fact("Supply", "C2", "R1", "I3")})
        assert self.db.distance(repaired) == 1

    def test_equality_ignores_tids(self):
        other = Database.from_dict({
            "Articles": [("I2",), ("I1",)],
            "Supply": [("C2", "R1", "I3"), ("C1", "R1", "I1"),
                       ("C2", "R2", "I2")],
        })
        assert self.db == other
        assert hash(self.db) == hash(other)

    def test_active_domain_excludes_null(self):
        db = Database.from_dict({"R": [(1, NULL), (2, 3)]})
        assert db.active_domain() == frozenset({1, 2, 3})

    def test_update_value(self):
        db = Database.from_dict({"R": [(1, 2)]})
        tid = db.tid_of(fact("R", 1, 2))
        updated = db.update_value(tid, 1, NULL)
        assert updated.fact_by_tid(tid) == Fact("R", (1, NULL))
        assert fact("R", 1, 2) in db  # original untouched

    def test_update_value_collision_collapses(self):
        db = Database.from_dict({"R": [(1, 2), (1, 3)]})
        tid = db.tid_of(fact("R", 1, 3))
        updated = db.update_value(tid, 1, 1)  # no-op value change
        assert len(updated) == 2
        collided = db.update_value(tid, 1, 1).update_value(tid, 1, 1)
        assert len(collided) == 2
        merged = db.update_value(db.tid_of(fact("R", 1, 3)), 1, 2)
        assert len(merged) == 1

    def test_arity_mismatch_rejected(self):
        schema = Schema.of(RelationSchema("R", ("a", "b")))
        with pytest.raises(SchemaError):
            Database.from_dict({"R": [(1,)]}, schema=schema)

    def test_unknown_relation_rejected(self):
        schema = Schema.of(RelationSchema("R", ("a",)))
        with pytest.raises(SchemaError):
            Database.from_dict({"S": [(1,)]}, schema=schema)

    def test_empty_relation_needs_schema(self):
        with pytest.raises(SchemaError):
            Database.from_dict({"R": []})
        schema = Schema.of(RelationSchema("R", ("a",)))
        db = Database.from_dict({"R": []}, schema=schema)
        assert len(db) == 0

    def test_issubset(self):
        smaller = self.db.delete([fact("Articles", "I1")])
        assert smaller.issubset(self.db)
        assert not self.db.issubset(smaller)

    def test_restricted_to(self):
        tid = self.db.tid_of(fact("Articles", "I1"))
        only = self.db.restricted_to([tid])
        assert len(only) == 1
        assert fact("Articles", "I1") in only

    def test_render_mentions_relations(self):
        text = self.db.render()
        assert "Supply" in text and "Articles" in text

    def test_from_facts(self):
        db = Database.from_facts([fact("R", 1), fact("R", 1), fact("S", 2)])
        assert len(db) == 2

    def test_relation_deterministic_order(self):
        db1 = Database.from_dict({"R": [(2,), (1,), (3,)]})
        db2 = Database.from_dict({"R": [(3,), (2,), (1,)]})
        assert db1.relation("R") == db2.relation("R")


class TestSQLBridge:
    def test_round_trip(self):
        from repro.relational.sqlbridge import run_sql

        db = Database.from_dict(
            {"Employee": [("page", "5K"), ("smith", "3K")]},
            schema=Schema.of(
                RelationSchema("Employee", ("Name", "Salary"), key=("Name",))
            ),
        )
        rows = run_sql(db, 'SELECT "Name" FROM "Employee" ORDER BY "Name"')
        assert set(rows) == {("page",), ("smith",)}

    def test_null_round_trip(self):
        from repro.relational.sqlbridge import run_sql

        db = Database.from_dict({"R": [(1, NULL)]})
        rows = run_sql(db, 'SELECT * FROM "R"')
        assert rows == [(1, NULL)]

    def test_null_does_not_join_in_sqlite(self):
        from repro.relational.sqlbridge import run_sql

        db = Database.from_dict({"R": [(NULL,)], "S": [(NULL,)]})
        rows = run_sql(
            db, 'SELECT * FROM "R", "S" WHERE "R"."a0" = "S"."a0"'
        )
        assert rows == []

    def test_labeled_nulls_rejected(self):
        from repro.relational.sqlbridge import to_sqlite

        db = Database.from_dict({"R": [(LabeledNull("n"),)]})
        with pytest.raises(ValueError):
            to_sqlite(db)
