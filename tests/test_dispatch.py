"""Tests for the resilient multi-engine CQA dispatcher.

Covers the breaker state machine (with a fake clock), typed
applicability errors, ladder fallback under injected faults, subprocess
isolation with watchdog kill, shadow cross-checking, the budget-capped
retry backoff, and the CLI front-end.  The invariant under test
throughout: the dispatcher may degrade (INCOMPLETE) or refuse
(DispatchError), but it never returns a wrong answer.
"""

import pytest

from repro.cqa import consistent_answers, fuxman_miller_rewrite
from repro.cqa.rewriting import fo_rewrite
from repro.dispatch import (
    BreakerState,
    CircuitBreaker,
    CQARequest,
    DEFAULT_LADDER,
    DispatchError,
    DispatchPolicy,
    Dispatcher,
    EngineInapplicableError,
    applicable_engines,
    dispatch_cqa,
    get_engine,
    run_isolated,
)
from repro.dispatch.worker import WorkerTimeoutError
from repro.errors import (
    NotRewritableError,
    ReproError,
    RewritingError,
)
from repro.logic import atom, cq, vars_
from repro.observability import collect
from repro.runtime import Budget, FaultPlan, inject, use_budget
from repro.runtime.retry import retry_transient
from repro.errors import TransientBackendError
from repro.workloads import employee, employee_key_violations, rs_instance

X, Y = vars_("x y")


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        b = CircuitBreaker("e", failure_threshold=3, clock=FakeClock())
        b.record_failure()
        b.record_failure()
        assert b.state() is BreakerState.CLOSED
        assert b.allows()

    def test_trips_open_at_threshold(self):
        b = CircuitBreaker("e", failure_threshold=3, clock=FakeClock())
        for _ in range(3):
            b.record_failure()
        assert b.state() is BreakerState.OPEN
        assert not b.allows()
        assert b.trips == 1

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("e", failure_threshold=3, clock=FakeClock())
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state() is BreakerState.CLOSED

    def test_half_open_after_cooldown_allows_one_probe(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "e", failure_threshold=1, cooldown_s=30.0, clock=clock
        )
        b.record_failure()
        assert not b.allows()
        clock.advance(29.0)
        assert not b.allows()
        clock.advance(1.0)
        assert b.state() is BreakerState.HALF_OPEN
        assert b.allows()       # the single probe
        assert not b.allows()   # probe in flight: everyone else waits

    def test_probe_success_closes(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "e", failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        b.record_failure()
        clock.advance(5.0)
        assert b.allows()
        b.record_success()
        assert b.state() is BreakerState.CLOSED
        assert b.allows()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        b = CircuitBreaker(
            "e", failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        b.record_failure()
        clock.advance(5.0)
        assert b.allows()
        b.record_failure()
        assert b.state() is BreakerState.OPEN
        clock.advance(4.9)
        assert not b.allows()
        clock.advance(0.1)
        assert b.allows()

    def test_half_open_admits_exactly_one_probe_across_threads(self):
        # The serving layer hits a shared breaker from many handler
        # threads at once; check-state + claim-probe must be atomic or
        # a just-cooled breaker lets a thundering herd through.
        import threading

        clock = FakeClock()
        b = CircuitBreaker(
            "e", failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        b.record_failure()
        clock.advance(5.0)  # cooled: next allows() promotes to HALF_OPEN
        n = 16
        barrier = threading.Barrier(n)
        admitted = []

        def contender():
            barrier.wait()
            if b.allows():
                admitted.append(threading.get_ident())

        threads = [
            threading.Thread(target=contender) for _ in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 1
        assert b.state() is BreakerState.HALF_OPEN
        # The winning probe reports back; everyone is admitted again.
        b.record_success()
        assert b.state() is BreakerState.CLOSED

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("e", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("e", cooldown_s=-1.0)


# ----------------------------------------------------------------------
# Typed applicability errors (satellite: NotRewritableError)
# ----------------------------------------------------------------------


class TestNotRewritable:
    def test_is_typed_subclass(self):
        assert issubclass(NotRewritableError, RewritingError)
        assert issubclass(NotRewritableError, ReproError)

    def test_fuxman_miller_raises_on_non_key_constraints(self):
        scenario = rs_instance()
        q = cq([X], [atom("S", X)], name="q")
        with pytest.raises(NotRewritableError):
            fuxman_miller_rewrite(q, scenario.constraints, scenario.db)

    def test_fo_rewrite_raises_on_existential_head_tgd(self):
        # An inclusion dependency whose target has extra attributes
        # turns into a tgd with existential head variables — no
        # universal clausal form, so residue rewriting must refuse.
        from repro.constraints import InclusionDependency
        from repro.workloads import supply_articles

        scenario = supply_articles()
        reverse = InclusionDependency(
            "Articles", ("Item",), "Supply", ("Item",), name="rev"
        )
        with pytest.raises(NotRewritableError):
            fo_rewrite(
                cq([X], [atom("Articles", X)], name="q"),
                (reverse,),
                scenario.db,
            )

    def test_applicability_never_penalizes_breakers(self):
        # A BCQ with existential variables under a denial constraint:
        # both rewriting rungs are inapplicable, asp serves it.
        scenario = rs_instance()
        d = Dispatcher(DispatchPolicy())
        result = d.dispatch(
            scenario.db, scenario.constraints, scenario.queries["Q"]
        )
        assert result.provenance.engine == "asp"
        statuses = {
            o.engine: o.status for o in result.provenance.rungs
        }
        assert statuses["fm-sql"] == "inapplicable"
        assert statuses["fo-mem"] == "inapplicable"
        assert all(b.failures == 0 for b in d.breakers.values())


# ----------------------------------------------------------------------
# Engines agree where applicable
# ----------------------------------------------------------------------


class TestEngines:
    def test_applicable_engines_on_paper_example(self):
        scenario = employee()
        request = CQARequest(
            scenario.db, scenario.constraints, scenario.queries["Q2"]
        )
        names = applicable_engines(request)
        assert names[0] == "fm-sql"
        assert "enumerate" in names and "certain-core" in names

    @pytest.mark.parametrize("qname", ["Q1", "Q2"])
    def test_every_exact_engine_matches_reference(self, qname):
        scenario = employee()
        query = scenario.queries[qname]
        ref = consistent_answers(
            scenario.db, scenario.constraints, query
        )
        request = CQARequest(scenario.db, scenario.constraints, query)
        for name in applicable_engines(request):
            engine = get_engine(name)
            answer = engine.run(request)
            if engine.exact:
                assert answer.complete
                assert answer.answers == ref, name
            else:
                assert answer.answers <= ref, name

    def test_semantics_validation(self):
        scenario = employee()
        with pytest.raises(ValueError):
            CQARequest(
                scenario.db, scenario.constraints,
                scenario.queries["Q1"], semantics="majority",
            )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            get_engine("quantum")
        with pytest.raises(ValueError):
            DispatchPolicy(ladder=("quantum",))


# ----------------------------------------------------------------------
# Ladder fallback under injected faults
# ----------------------------------------------------------------------


class TestFallback:
    def test_sqlite_outage_falls_to_fo_mem(self):
        scenario = employee()
        query = scenario.queries["Q2"]
        ref = consistent_answers(
            scenario.db, scenario.constraints, query
        )
        with collect() as collector:
            with inject(FaultPlan(seed=3, sqlite_failure_rate=1.0)):
                result = dispatch_cqa(
                    scenario.db, scenario.constraints, query
                )
        assert result.complete
        assert result.answers == ref
        assert result.provenance.engine == "fo-mem"
        assert result.provenance.rungs[0].engine == "fm-sql"
        assert result.provenance.rungs[0].status == "failed"
        assert collector.counter("dispatch.fallbacks") >= 1

    def test_breaker_skips_dead_engine_on_later_requests(self):
        scenario = employee()
        query = scenario.queries["Q1"]
        d = Dispatcher(DispatchPolicy(failure_threshold=2))
        with inject(FaultPlan(seed=5, sqlite_failure_rate=1.0)):
            for _ in range(2):
                d.dispatch(scenario.db, scenario.constraints, query)
            result = d.dispatch(
                scenario.db, scenario.constraints, query
            )
        assert result.provenance.rungs[0].status == "breaker-open"
        assert result.provenance.engine == "fo-mem"

    def test_all_exact_engines_starved_yields_sound_incomplete(self):
        scenario = employee_key_violations(3, 2, 2, seed=4)
        query = scenario.queries["all"]
        ref = consistent_answers(
            scenario.db, scenario.constraints, query
        )
        policy = DispatchPolicy(
            ladder=("asp", "enumerate", "certain-core")
        )
        with inject(FaultPlan(seed=1, starve_steps_after=5)):
            result = dispatch_cqa(
                scenario.db, scenario.constraints, query, policy=policy
            )
        assert not result.complete
        assert result.provenance.engine == "certain-core"
        assert result.answers <= ref
        upper = result.detail.get("upper_bound")
        assert upper is not None and ref <= upper
        failed = [
            o for o in result.provenance.rungs if o.status == "failed"
        ]
        assert {o.engine for o in failed} == {"asp", "enumerate"}

    def test_unservable_request_raises_dispatch_error(self):
        # A BCQ on non-key constraints with a rewriting-only ladder:
        # nothing applies, and the error says so per rung.
        scenario = rs_instance()
        policy = DispatchPolicy(ladder=("fm-sql", "fo-mem"))
        with pytest.raises(DispatchError, match="inapplicable"):
            dispatch_cqa(
                scenario.db, scenario.constraints,
                scenario.queries["Q"], policy=policy,
            )

    def test_request_budget_is_sliced_over_rungs(self):
        scenario = employee()
        query = scenario.queries["Q1"]
        d = Dispatcher(DispatchPolicy())
        request = CQARequest(scenario.db, scenario.constraints, query)
        budget = Budget(timeout=8.0)
        budget.start()
        applicable = d._applicability(request)
        slice_s = d._slice(request, budget, applicable, 0)
        # 4 exact applicable rungs share the 8s deadline.
        assert slice_s is not None and slice_s <= 2.1
        tail = d._slice(request, budget, applicable, 3)
        assert tail is not None and slice_s < tail <= 8.0


# ----------------------------------------------------------------------
# Subprocess isolation
# ----------------------------------------------------------------------


class TestIsolation:
    def test_round_trip(self):
        scenario = employee()
        query = scenario.queries["Q2"]
        ref = consistent_answers(
            scenario.db, scenario.constraints, query
        )
        request = CQARequest(scenario.db, scenario.constraints, query)
        answer = run_isolated("fm-sql", request, watchdog_s=30.0)
        assert answer.complete
        assert answer.answers == ref

    def test_typed_errors_survive_marshalling(self):
        scenario = rs_instance()
        request = CQARequest(
            scenario.db, scenario.constraints, scenario.queries["Q"]
        )
        with pytest.raises(NotRewritableError):
            run_isolated("fm-sql", request, watchdog_s=30.0)

    def test_watchdog_kills_wedged_worker(self):
        scenario = employee()
        request = CQARequest(
            scenario.db, scenario.constraints, scenario.queries["Q1"]
        )
        with collect() as collector:
            with pytest.raises(WorkerTimeoutError):
                run_isolated(
                    "fm-sql", request, watchdog_s=0.1, wedge_s=60.0
                )
            assert collector.counter("dispatch.worker_kills") == 1

    def test_dispatcher_survives_wedged_isolated_rung(self):
        scenario = employee()
        query = scenario.queries["Q1"]
        ref = consistent_answers(
            scenario.db, scenario.constraints, query
        )
        d = Dispatcher(DispatchPolicy(isolate=("fm-sql",)))
        original = d._run_rung

        def wedge_fm(request, name, slice_s, wedge_s=None):
            if name == "fm-sql":
                return original(request, name, 0.05, wedge_s=60.0)
            return original(request, name, slice_s, wedge_s=wedge_s)

        d._run_rung = wedge_fm
        result = d.dispatch(scenario.db, scenario.constraints, query)
        assert result.complete and result.answers == ref
        assert result.provenance.engine == "fo-mem"
        assert result.provenance.rungs[0].status == "failed"
        assert "watchdog" in result.provenance.rungs[0].reason

    def test_child_main_in_process(self, tmp_path):
        import io
        import pickle

        from repro.dispatch.worker import child_main

        scenario = employee()
        request = CQARequest(
            scenario.db, scenario.constraints, scenario.queries["Q1"]
        )
        job = pickle.dumps({"engine": "fo-mem", "request": request})
        out = io.BytesIO()
        assert child_main(io.BytesIO(job), out) == 0
        result = pickle.loads(out.getvalue())
        assert result["ok"] and result["complete"]


# ----------------------------------------------------------------------
# Shadow cross-checking
# ----------------------------------------------------------------------


class TestShadow:
    def test_shadow_agreement_on_paper_example(self):
        scenario = employee()
        d = Dispatcher(DispatchPolicy(shadow_rate=1.0))
        with collect() as collector:
            result = d.dispatch(
                scenario.db, scenario.constraints,
                scenario.queries["Q2"],
            )
            assert result.provenance.shadow is not None
            assert result.provenance.shadow.agreed is True
            assert result.provenance.shadow.engine != (
                result.provenance.engine
            )
            assert collector.counter("dispatch.shadow_runs") == 1
            assert collector.counter(
                "dispatch.shadow_disagreements"
            ) == 0

    def test_shadow_disagreement_is_counted(self, monkeypatch):
        from repro.dispatch import engines as engines_mod
        from repro.dispatch.engines import EngineAnswer

        scenario = employee()
        monkeypatch.setattr(
            type(engines_mod.ENGINES["fo-mem"]),
            "run",
            lambda self, request: EngineAnswer(frozenset(), True),
        )
        d = Dispatcher(DispatchPolicy(shadow_rate=1.0))
        with collect() as collector:
            result = d.dispatch(
                scenario.db, scenario.constraints,
                scenario.queries["Q2"],
            )
            assert result.provenance.shadow.agreed is False
            assert collector.counter(
                "dispatch.shadow_disagreements"
            ) == 1

    def test_shadow_sampling_is_seeded(self):
        scenario = employee()

        def shadowed(seed):
            d = Dispatcher(
                DispatchPolicy(shadow_rate=0.5, shadow_seed=seed)
            )
            hits = []
            for _ in range(8):
                r = d.dispatch(
                    scenario.db, scenario.constraints,
                    scenario.queries["Q1"],
                )
                hits.append(r.provenance.shadow is not None)
            return hits

        assert shadowed(7) == shadowed(7)
        assert any(shadowed(7)) and not all(shadowed(7))


# ----------------------------------------------------------------------
# Budget-capped, jittered retry backoff (satellite)
# ----------------------------------------------------------------------


class TestRetryBackoff:
    def _delays(self, expect=TransientBackendError, **kwargs):
        sleeps = []

        def flaky():
            raise TransientBackendError("down")

        with pytest.raises(expect):
            retry_transient(
                flaky, sleep=sleeps.append, **kwargs
            )
        return sleeps

    def test_jitter_is_deterministic_per_seed(self):
        a = self._delays(jitter_seed=1)
        b = self._delays(jitter_seed=1)
        c = self._delays(jitter_seed=2)
        assert a == b
        assert a != c

    def test_jitter_stays_within_band(self):
        sleeps = self._delays(
            jitter_seed=9, base_delay=0.1, factor=1.0, max_delay=0.1
        )
        assert len(sleeps) == 3
        for s in sleeps:
            assert 0.075 <= s <= 0.125

    def test_deadline_shorter_than_backoff_raises_immediately(self):
        # Nominal backoff of 5s per retry, but only ~0.5s of wall time
        # left: sleeping would overshoot the deadline, so the transient
        # error must be re-raised immediately with zero sleeps (PR 8).
        budget = Budget(timeout=1000.0)
        budget.start()
        budget._deadline = budget._clock() + 0.5
        with use_budget(budget):
            sleeps = self._delays(
                jitter_seed=0, base_delay=5.0, max_delay=5.0
            )
        assert sleeps == []

    def test_ample_deadline_still_sleeps_full_backoff(self):
        # With hours of wall time left the fail-fast path must not
        # trigger: the full jittered schedule runs as before.
        budget = Budget(timeout=1000.0)
        budget.start()
        with use_budget(budget):
            sleeps = self._delays(
                jitter_seed=0, base_delay=0.01, max_delay=0.25
            )
        assert len(sleeps) == 3

    def test_expired_budget_aborts_backoff_without_sleeping(self):
        # remaining_time() is clamped at 0 and the pre-sleep checkpoint
        # raises; either way the loop must never sleep (time.sleep would
        # reject a negative duration) once the deadline has passed.
        from repro.errors import BudgetExceededError

        budget = Budget(timeout=1000.0)
        budget.start()
        budget._deadline = budget._clock() - 1.0
        with use_budget(budget):
            sleeps = self._delays(
                expect=(TransientBackendError, BudgetExceededError),
                jitter_seed=0, attempts=2,
            )
        assert sleeps == []


# ----------------------------------------------------------------------
# CLI front-end
# ----------------------------------------------------------------------


class TestDispatchCli:
    @pytest.fixture
    def employee_csv(self, tmp_path):
        path = tmp_path / "emp.csv"
        path.write_text(
            "Name,Salary\npage,5K\npage,8K\nsmith,3K\nstowe,7K\n"
        )
        return str(path)

    def test_happy_path_with_provenance(self, employee_csv, capsys):
        from repro.cli import main

        rc = main([
            "dispatch", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--query", "Q(X) :- Employee(X, Y)",
            "--provenance",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "page" in captured.out
        assert "via fm-sql" in captured.err
        assert "fm-sql: ok" in captured.err

    def test_forced_sqlite_failure_routes_to_lower_rung(
        self, employee_csv, capsys
    ):
        from repro.cli import main

        rc = main([
            "dispatch", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--query", "Q(X, Y) :- Employee(X, Y)",
            "--provenance", "--fault-sqlite-rate", "1.0",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "smith,3K" in captured.out
        assert "page" not in captured.out
        assert "via fo-mem" in captured.err
        assert "fm-sql: failed" in captured.err

    def test_total_outage_degrades_to_incomplete(
        self, employee_csv, capsys
    ):
        from repro.cli import main

        rc = main([
            "dispatch", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--query", "Q(X, Y) :- Employee(X, Y)",
            "--engine", "asp", "--engine", "enumerate",
            "--engine", "certain-core",
            "--fault-starve-after", "5",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "INCOMPLETE" in captured.err
        assert "certain-core" in captured.err
        # sound: only the conflict-free tuples may be printed
        assert "page" not in captured.out

    def test_unservable_is_a_clean_error_not_a_traceback(
        self, employee_csv, capsys
    ):
        from repro.cli import main

        rc = main([
            "dispatch", "--csv", f"Employee={employee_csv}",
            "--fd", "Employee: Name -> Salary",
            "--query", "Q(X) :- Employee(X, Y), Employee(Y, X)",
            "--engine", "fm-sql", "--engine", "fo-mem",
        ])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error:" in captured.err
        assert "Traceback" not in captured.err
