"""Tests for the text syntax of queries and constraints."""

import pytest

from repro.errors import QueryError
from repro.logic import Var, atom, neq
from repro.logic.parser import (
    parse_denial,
    parse_fd,
    parse_inclusion,
    parse_query,
)
from repro.workloads import employee, rs_instance, supply_articles


class TestParseQuery:
    def test_projection_query(self):
        q = parse_query("Q(Z) :- Supply(X, Y, Z)")
        assert q.head == (Var("Z"),)
        assert q.atoms == (atom("Supply", Var("X"), Var("Y"), Var("Z")),)
        assert q.name == "Q"

    def test_matches_scenario_query(self):
        scenario = supply_articles()
        q = parse_query("Q(Z) :- Supply(X, Y, Z)")
        assert q.answers(scenario.db) == {("I1",), ("I2",), ("I3",)}

    def test_comparisons(self):
        q = parse_query("Q(X, Y) :- R(X, Y), X != Y")
        assert q.conditions == (neq(Var("X"), Var("Y")),)
        q2 = parse_query("Q(X) :- R(X, Y), Y <> 3")
        assert q2.conditions[0].op == "!="

    def test_constants(self):
        q = parse_query("Q(X) :- Supply('C2', rcv, X)")
        assert q.atoms[0].terms == ("C2", "rcv", Var("X"))
        q2 = parse_query('Q(X) :- R(X, 5, 2.5, "lit")')
        assert q2.atoms[0].terms == (Var("X"), 5, 2.5, "lit")

    def test_boolean_query(self):
        q = parse_query("Q() :- S(X), R(X, Y), S(Y)")
        assert q.is_boolean
        scenario = rs_instance()
        assert q.holds(scenario.db)

    def test_head_must_use_variables(self):
        with pytest.raises(QueryError):
            parse_query("Q(5) :- R(X)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QueryError):
            parse_query("Q(X) :- R(X) extra")

    def test_tokenizer_error(self):
        with pytest.raises(QueryError):
            parse_query("Q(X) :- R(X) & S(X)")

    def test_missing_body(self):
        with pytest.raises(QueryError):
            parse_query("Q(X)")


class TestParseConstraints:
    def test_denial(self):
        dc = parse_denial(":- S(X), R(X, Y), S(Y)", name="kappa")
        scenario = rs_instance()
        assert not dc.is_satisfied(scenario.db)
        assert len(dc.violations(scenario.db)) == 2

    def test_denial_with_comparison(self):
        dc = parse_denial(":- R(X, Y), R(X, Z), Y != Z")
        from repro.relational import Database

        db = Database.from_dict({"R": [(1, 2), (1, 3)]})
        assert not dc.is_satisfied(db)

    def test_fd(self):
        fd = parse_fd("Employee: Name -> Salary")
        scenario = employee()
        assert not fd.is_satisfied(scenario.db)
        assert fd.lhs == ("Name",) and fd.rhs == ("Salary",)

    def test_fd_multiple_attributes(self):
        fd = parse_fd("Customer: CC, AC -> City, Zip")
        assert fd.lhs == ("CC", "AC")
        assert fd.rhs == ("City", "Zip")

    def test_inclusion(self):
        ind = parse_inclusion("Supply[Item] <= Articles[Item]")
        scenario = supply_articles()
        assert not ind.is_satisfied(scenario.db)

    def test_inclusion_multi_attr(self):
        ind = parse_inclusion("A[x, y] <= B[u, v]")
        assert ind.child_attrs == ("x", "y")
        assert ind.parent_attrs == ("u", "v")

    def test_fd_trailing_rejected(self):
        with pytest.raises(QueryError):
            parse_fd("R: a -> b -> c")

    def test_round_trip_with_cqa(self):
        from repro.cqa import consistent_answers

        scenario = employee()
        q = parse_query("Q(X) :- Employee(X, Y)")
        fd = parse_fd("Employee: Name -> Salary")
        assert consistent_answers(scenario.db, (fd,), q) == {
            ("smith",), ("stowe",), ("page",),
        }
