"""Tests for the ASP text syntax and solver internals."""

import pytest

from repro.asp import (
    RepairProgram,
    Solver,
    ground_program,
    is_stable,
    parse_asp_program,
    parse_asp_rule,
    program_clauses,
    reduct_clauses,
    solve,
)
from repro.errors import GroundingError
from repro.logic import Comparison, Var, atom


class TestParseRules:
    def test_fact(self):
        rule = parse_asp_rule("p(a, 1).")
        assert rule.is_fact
        assert rule.head == (atom("p", "a", 1),)

    def test_zero_arity(self):
        rule = parse_asp_rule("seed.")
        assert rule.head == (atom("seed"),)

    def test_rule_with_negation_and_builtin(self):
        rule = parse_asp_rule("p(X) :- q(X, Y), not r(Y), X != Y.")
        assert rule.head == (atom("p", Var("X")),)
        assert rule.positive == (atom("q", Var("X"), Var("Y")),)
        assert rule.negative == (atom("r", Var("Y")),)
        assert rule.builtins == (Comparison("!=", Var("X"), Var("Y")),)

    def test_disjunctive_head(self):
        rule = parse_asp_rule("p(X) | q(X) :- r(X).")
        assert len(rule.head) == 2

    def test_constraint(self):
        rule = parse_asp_rule(":- p(X), q(X).")
        assert rule.is_constraint

    def test_quoted_and_numeric_constants(self):
        rule = parse_asp_rule("p('I1', \"two\", 3, 4.5).")
        assert rule.head[0].terms == ("I1", "two", 3, 4.5)

    def test_unsafe_rule_rejected(self):
        with pytest.raises(GroundingError):
            parse_asp_rule("p(X) :- q(Y).")

    def test_weak_constraint_rejected_in_rule_parser(self):
        with pytest.raises(GroundingError):
            parse_asp_rule(":~ p(X). [1@1]")

    def test_garbage_rejected(self):
        with pytest.raises(GroundingError):
            parse_asp_rule("p(X) :- q(X) ???")


class TestParseProgram:
    def test_program_with_weak_constraints(self):
        p = parse_asp_program("""
            % two choices, penalize b at a higher level
            seed.
            a | b :- seed.
            :~ b. [2@3]
        """)
        assert len(p.rules) == 2
        assert len(p.weak_constraints) == 1
        wc = p.weak_constraints[0]
        assert (wc.weight, wc.level) == (2, 3)
        optimal = Solver(p).optimal_answer_sets()
        assert len(optimal) == 1
        assert atom("a") in optimal[0]

    def test_comments_stripped(self):
        p = parse_asp_program("p(a). % p(b).\nq(c).")
        assert len(p.rules) == 2

    def test_example35_written_as_text(self):
        # The paper's repair program, hand-written in text form.
        p = parse_asp_program("""
            r(t1, a4, a3).  r(t2, a2, a1).  r(t3, a3, a3).
            s(t4, a4).      s(t5, a2).      s(t6, a3).
            sp(T1, X, d) | rp(T2, X, Y, d) | sp(T3, Y, d) :-
                s(T1, X), r(T2, X, Y), s(T3, Y).
            sp(T, X, stays) :- s(T, X), not sp(T, X, d).
            rp(T, X, Y, stays) :- r(T, X, Y), not rp(T, X, Y, d).
        """)
        sets = solve(p)
        assert len(sets) == 3

    def test_matches_compiled_repair_program(self):
        from repro.workloads import rs_instance

        scenario = rs_instance()
        rp = RepairProgram(scenario.db, scenario.constraints)
        assert len(solve(rp.program)) == 3


class TestSolverInternals:
    def test_program_clauses_shape(self):
        p = parse_asp_program("seed. a | b :- seed, not c.")
        ground = ground_program(p)
        clauses = program_clauses(ground)
        # fact clause (unit) + rule clause with 3 or 4 literals
        # (c can never be derived, so 'not c' is simplified away).
        sizes = sorted(len(c) for c in clauses)
        assert sizes == [1, 3]

    def test_reduct_removes_blocked_rules(self):
        p = parse_asp_program("seed. a :- seed, not b. b :- seed, not a.")
        ground = ground_program(p)
        index = {a.predicate: i for i, a in enumerate(ground.atoms)}
        model = {index["a"], index["seed"]}
        reduct = reduct_clauses(ground, model)
        # The rule for b (blocked by a ∈ M) is gone; fact + a-rule stay.
        assert len(reduct) == 2

    def test_is_stable(self):
        p = parse_asp_program("seed. a :- seed, not b. b :- seed, not a.")
        ground = ground_program(p)
        index = {a.predicate: i for i, a in enumerate(ground.atoms)}
        assert is_stable(ground, {index["a"], index["seed"]})
        assert is_stable(ground, {index["b"], index["seed"]})
        assert not is_stable(
            ground, {index["a"], index["b"], index["seed"]}
        )
        assert not is_stable(ground, {index["seed"]})

    def test_empty_program(self):
        p = parse_asp_program("")
        assert len(solve(p)) == 1
        assert len(solve(p)[0]) == 0

    def test_contradictory_program_no_models(self):
        p = parse_asp_program("p. :- p.")
        assert solve(p) == []
