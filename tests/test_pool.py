"""Warm worker pool: frame protocol, supervision, and teardown hygiene.

Process-spawning tests keep pools small (size 1–2) — each warm spawn
pays a real interpreter start-up — and every test asserts the processes
it created are gone when it is done.
"""

import io
import os
import pickle
import threading
import time

import pytest

from repro.dispatch import (
    CQARequest,
    DispatchPolicy,
    Dispatcher,
    PoolConfig,
    PoolSaturatedError,
    WorkerPool,
    run_isolated,
)
from repro.dispatch import worker as worker_mod
from repro.dispatch.worker import (
    WorkerCrashError,
    WorkerTimeoutError,
    read_frame,
    serve_loop,
    write_frame,
)
from repro.cqa import consistent_answers
from repro.observability import collect
from repro.workloads import employee


def _pid_alive(pid: int) -> bool:
    """True while the pid exists and is not a zombie."""
    try:
        with open(f"/proc/{pid}/stat") as fh:
            return fh.read().split(") ", 1)[1][0] != "Z"
    except OSError:
        return False


def _zombie_children() -> list:
    """Pids of direct children of this process in state Z."""
    me = os.getpid()
    zombies = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as fh:
                rest = fh.read().split(") ", 1)[1].split()
        except OSError:
            continue
        state, ppid = rest[0], int(rest[1])
        if ppid == me and state == "Z":
            zombies.append(int(entry))
    return zombies


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


# ----------------------------------------------------------------------
# Frame protocol + serve_loop (in-process, no subprocess)
# ----------------------------------------------------------------------


class TestFrameProtocol:
    def test_round_trip(self):
        buf = io.BytesIO()
        write_frame(buf, b"hello")
        write_frame(buf, b"")
        buf.seek(0)
        assert read_frame(buf) == b"hello"
        assert read_frame(buf) == b""
        assert read_frame(buf) is None  # clean EOF

    def test_truncated_header_raises(self):
        with pytest.raises(WorkerCrashError):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_payload_raises(self):
        buf = io.BytesIO()
        write_frame(buf, b"hello")
        stream = io.BytesIO(buf.getvalue()[:-2])
        with pytest.raises(WorkerCrashError):
            read_frame(stream)

    def test_oversized_frame_rejected_without_allocating(self):
        buf = io.BytesIO()
        buf.write(worker_mod._FRAME.pack(worker_mod.MAX_FRAME_BYTES + 1))
        buf.seek(0)
        with pytest.raises(WorkerCrashError):
            read_frame(buf)


class TestServeLoopInProcess:
    def _frames(self, *jobs) -> io.BytesIO:
        buf = io.BytesIO()
        for job in jobs:
            write_frame(buf, pickle.dumps(job))
        buf.seek(0)
        return buf

    def _responses(self, out: io.BytesIO) -> list:
        out.seek(0)
        frames = []
        while True:
            frame = read_frame(out)
            if frame is None:
                return frames
            frames.append(pickle.loads(frame))

    def test_ping_run_exit(self):
        scenario = employee()
        request = CQARequest(
            scenario.db, scenario.constraints, scenario.queries["Q1"]
        )
        out = io.BytesIO()
        rc = serve_loop(
            self._frames(
                {"op": "ping"},
                {"engine": "fo-mem", "request": request},
                {"op": "exit"},
            ),
            out,
        )
        assert rc == 0
        pong, answer, goodbye = self._responses(out)
        assert pong["op"] == "pong" and pong["pid"] == os.getpid()
        assert pong["served"] == 0 and pong["rss_kb"] > 0
        assert answer["ok"] and answer["complete"]
        assert answer["served"] == 1  # every answer is a health sample
        assert goodbye["op"] == "exit" and goodbye["served"] == 1

    def test_eof_between_frames_is_clean_exit(self):
        assert serve_loop(self._frames({"op": "ping"}), io.BytesIO()) == 0

    def test_malformed_job_answered_not_fatal(self):
        buf = io.BytesIO()
        write_frame(buf, b"not a pickle at all")
        write_frame(buf, pickle.dumps({"op": "ping"}))
        buf.seek(0)
        out = io.BytesIO()
        assert serve_loop(buf, out) == 0
        error, pong = self._responses(out)
        assert not error["ok"] and error["kind"] == "failure"
        assert pong["op"] == "pong"  # the loop survived the bad frame

    def test_truncated_stream_reports_protocol_death(self):
        buf = io.BytesIO()
        write_frame(buf, pickle.dumps({"op": "ping"}))
        stream = io.BytesIO(buf.getvalue()[:-1])
        assert serve_loop(stream, io.BytesIO()) == 1


# ----------------------------------------------------------------------
# One-shot teardown hygiene (the watchdog-kill regression)
# ----------------------------------------------------------------------


class TestOneShotTeardown:
    def test_repeated_watchdog_kills_leak_nothing(self, monkeypatch):
        """Watchdog kills must reap the child and close its pipe fds —
        the old path leaked both on every WorkerTimeoutError."""
        monkeypatch.setattr(worker_mod, "MIN_WATCHDOG_S", 0.1)
        scenario = employee()
        request = CQARequest(
            scenario.db, scenario.constraints, scenario.queries["Q1"]
        )
        fds_before = _open_fds()
        for _ in range(5):
            with pytest.raises(WorkerTimeoutError):
                run_isolated(
                    "fm-sql", request, watchdog_s=0.1, wedge_s=60.0
                )
        assert _zombie_children() == []
        assert _open_fds() == fds_before


# ----------------------------------------------------------------------
# The supervised pool
# ----------------------------------------------------------------------


def _request():
    scenario = employee()
    return (
        CQARequest(
            scenario.db, scenario.constraints, scenario.queries["Q2"]
        ),
        consistent_answers(
            scenario.db, scenario.constraints, scenario.queries["Q2"]
        ),
    )


class TestWorkerPool:
    def test_warm_worker_is_reused_across_requests(self):
        pool = WorkerPool(PoolConfig(size=1)).start()
        try:
            request, ref = _request()
            first_pid = pool.stats()["pids"][0]
            for _ in range(3):
                answer = pool.run_engine(
                    "fm-sql", request, watchdog_s=30.0
                )
                assert answer.complete and answer.answers == ref
            stats = pool.stats()
            assert stats["pids"] == [first_pid]  # same process, 3 jobs
            assert stats["spawns"] == 1 and stats["recycles"] == 0
        finally:
            pool.drain()

    def test_recycled_after_max_requests(self):
        pool = WorkerPool(PoolConfig(size=1, max_requests=2)).start()
        try:
            request, ref = _request()
            first_pid = pool.stats()["pids"][0]
            for _ in range(3):
                answer = pool.run_engine(
                    "fm-sql", request, watchdog_s=30.0
                )
                assert answer.answers == ref
                assert pool.wait_ready(timeout_s=30.0)
            stats = pool.stats()
            assert stats["recycle_reasons"].get("max-requests", 0) >= 1
            assert first_pid not in stats["pids"]
            assert not _pid_alive(first_pid)
        finally:
            pool.drain()

    def test_recycled_when_rss_exceeds_cap(self):
        # Any real worker's RSS exceeds 1 KiB, so the first check-in
        # must retire it — and the answer must still come back first.
        pool = WorkerPool(PoolConfig(size=1, max_rss_kb=1)).start()
        try:
            request, ref = _request()
            answer = pool.run_engine("fm-sql", request, watchdog_s=30.0)
            assert answer.answers == ref
            assert pool.wait_ready(timeout_s=30.0)
            assert pool.stats()["recycle_reasons"].get("rss", 0) >= 1
        finally:
            pool.drain()

    def test_rss_ballast_hook_shows_up_in_report(self):
        pool = WorkerPool(PoolConfig(size=1)).start()
        try:
            request, _ = _request()
            pool.run_engine("fm-sql", request, watchdog_s=30.0)
            baseline = pool.stats()
            worker_rss = [
                w.rss_kb for w in pool._workers  # noqa: SLF001
            ][0]
            pool.run_engine(
                "fm-sql", request, watchdog_s=30.0, pad_rss_kb=20_000
            )
            grown = [w.rss_kb for w in pool._workers][0]  # noqa: SLF001
            assert grown >= worker_rss + 15_000
            assert baseline["recycles"] == 0
        finally:
            pool.drain()

    def test_crash_mid_request_is_typed_and_backfilled(self):
        pool = WorkerPool(PoolConfig(size=1)).start()
        try:
            request, ref = _request()
            first_pid = pool.stats()["pids"][0]
            with pytest.raises(WorkerCrashError):
                pool.run_engine(
                    "fm-sql", request, watchdog_s=30.0, crash_code=3
                )
            assert not _pid_alive(first_pid)
            assert pool.wait_ready(timeout_s=30.0)  # respawner caught up
            answer = pool.run_engine("fm-sql", request, watchdog_s=30.0)
            assert answer.answers == ref
            assert pool.stats()["recycle_reasons"].get("crash", 0) == 1
        finally:
            pool.drain()

    def test_wedged_worker_killed_at_literal_deadline(self):
        # No MIN_WATCHDOG_S floor for warm workers: they already paid
        # start-up, so a 0.3s deadline means 0.3s.
        pool = WorkerPool(PoolConfig(size=1)).start()
        try:
            request, _ = _request()
            first_pid = pool.stats()["pids"][0]
            started = time.monotonic()
            with collect() as collector:
                with pytest.raises(WorkerTimeoutError):
                    pool.run_engine(
                        "fm-sql",
                        request,
                        watchdog_s=0.3,
                        wedge_s=60.0,
                    )
                assert collector.counter("dispatch.worker_kills") == 1
            assert time.monotonic() - started < 5.0
            assert not _pid_alive(first_pid)
            assert (
                pool.stats()["recycle_reasons"].get("timeout", 0) == 1
            )
        finally:
            pool.drain()

    def test_saturation_fails_fast_without_queueing(self):
        pool = WorkerPool(
            PoolConfig(size=1, grab_timeout_s=0.1)
        ).start()
        try:
            request, _ = _request()
            hostage = pool._idle.get()  # noqa: SLF001 — occupy the pool
            try:
                started = time.monotonic()
                with pytest.raises(PoolSaturatedError):
                    pool.run_engine("fm-sql", request, watchdog_s=5.0)
                assert time.monotonic() - started < 2.0
            finally:
                pool._idle.put(hostage)  # noqa: SLF001
        finally:
            pool.drain()

    def test_heartbeat_retires_dead_idle_worker(self):
        pool = WorkerPool(PoolConfig(size=1)).start()
        try:
            pid = pool.stats()["pids"][0]
            os.kill(pid, 9)  # dies while idle: no request will notice
            report = pool.health_check(deadline_s=2.0)
            assert report == {"checked": 1, "retired": 1}
            assert pool.wait_ready(timeout_s=30.0)
            request, ref = _request()
            answer = pool.run_engine("fm-sql", request, watchdog_s=30.0)
            assert answer.answers == ref
        finally:
            pool.drain()

    def test_drain_leaves_no_processes_and_refuses_new_work(self):
        pool = WorkerPool(PoolConfig(size=2)).start()
        pids = pool.stats()["pids"]
        assert len(pids) == 2
        pool.drain()
        for pid in pids:
            assert not _pid_alive(pid)
        stats = pool.stats()
        assert stats["workers"] == 0 and stats["draining"]
        request, _ = _request()
        with pytest.raises(PoolSaturatedError):
            pool.run_engine("fm-sql", request, watchdog_s=5.0)

    def test_drain_is_idempotent(self):
        pool = WorkerPool(PoolConfig(size=1)).start()
        pool.drain()
        pool.drain()
        assert pool.stats()["workers"] == 0


class TestDispatcherWithPool:
    def test_isolated_rung_runs_on_the_pool(self):
        pool = WorkerPool(PoolConfig(size=1)).start()
        try:
            scenario = employee()
            query = scenario.queries["Q2"]
            ref = consistent_answers(
                scenario.db, scenario.constraints, query
            )
            d = Dispatcher(
                DispatchPolicy(isolate=("fm-sql",)), pool=pool
            )
            with collect() as collector:
                result = d.dispatch(
                    scenario.db, scenario.constraints, query
                )
                assert collector.counter("pool.dispatches") == 1
            assert result.complete and result.answers == ref
            assert result.provenance.engine == "fm-sql"
        finally:
            pool.drain()

    def test_saturated_rung_falls_through_without_breaker_penalty(self):
        pool = WorkerPool(
            PoolConfig(size=1, grab_timeout_s=0.1)
        ).start()
        try:
            scenario = employee()
            query = scenario.queries["Q1"]
            ref = consistent_answers(
                scenario.db, scenario.constraints, query
            )
            d = Dispatcher(
                DispatchPolicy(isolate=("fm-sql",)), pool=pool
            )
            hostage = pool._idle.get()  # noqa: SLF001
            try:
                result = d.dispatch(
                    scenario.db, scenario.constraints, query
                )
            finally:
                pool._idle.put(hostage)  # noqa: SLF001
            # Saturation is unavailability, not failure: the ladder
            # falls through and the rung's breaker stays untouched.
            assert result.complete and result.answers == ref
            assert result.provenance.engine == "fo-mem"
            rung = result.provenance.rungs[0]
            assert rung.engine == "fm-sql"
            assert rung.status == "saturated"
            assert d.breakers["fm-sql"].failures == 0
        finally:
            pool.drain()


class TestPoolConcurrency:
    def test_parallel_callers_share_two_workers_correctly(self):
        pool = WorkerPool(PoolConfig(size=2)).start()
        try:
            request, ref = _request()
            results, errors = [], []

            def caller():
                try:
                    answer = pool.run_engine(
                        "fm-sql", request, watchdog_s=30.0
                    )
                    results.append(answer.answers)
                except PoolSaturatedError:
                    errors.append("saturated")

            threads = [
                threading.Thread(target=caller) for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # Every completed call is exactly right; callers that found
            # the pool busy failed fast instead of queueing.
            assert all(answers == ref for answers in results)
            assert len(results) + len(errors) == 8
            assert results  # at least the first two grabs succeed
        finally:
            pool.drain()
