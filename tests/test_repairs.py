"""Tests for repair semantics: S-, C-, null-based, attribute-based."""

import itertools

import pytest

from repro.constraints import DenialConstraint, FunctionalDependency
from repro.errors import RepairError
from repro.logic import atom, vars_
from repro.relational import NULL, Database, fact
from repro.repairs import (
    attribute_repairs,
    c_attribute_repairs,
    c_repairs,
    count_fd_repairs,
    count_s_repairs,
    delete_only_repairs,
    is_c_repair,
    is_s_repair,
    null_tuple_repairs,
    one_c_repair,
    one_s_repair,
    repair_distance,
    s_repairs,
)
from repro.workloads import (
    abcde_instance,
    employee,
    employee_key_violations,
    random_rs_instance,
    rs_instance,
    supply_articles,
    supply_articles_cost,
)

X, Y = vars_("x y")


class TestExample31:
    """Example 3.1: Supply/Articles under the inclusion dependency."""

    def setup_method(self):
        self.scenario = supply_articles()

    def test_two_s_repairs(self):
        repairs = s_repairs(self.scenario.db, self.scenario.constraints)
        assert len(repairs) == 2
        diffs = {r.diff for r in repairs}
        # D1 deletes Supply(C2,R1,I3); D2 inserts Articles(I3).
        assert frozenset({fact("Supply", "C2", "R1", "I3")}) in diffs
        assert frozenset({fact("Articles", "I3")}) in diffs

    def test_d3_is_not_a_repair(self):
        # Deleting both Supply(C2,R1,I3) and Supply(C2,R2,I2) is consistent
        # but not minimal.
        d3 = self.scenario.db.delete([
            fact("Supply", "C2", "R1", "I3"),
            fact("Supply", "C2", "R2", "I2"),
        ])
        assert not is_s_repair(
            self.scenario.db, d3, self.scenario.constraints
        )

    def test_both_are_c_repairs(self):
        repairs = c_repairs(self.scenario.db, self.scenario.constraints)
        assert len(repairs) == 2
        assert all(r.size == 1 for r in repairs)

    def test_delete_only_semantics(self):
        repairs = delete_only_repairs(
            self.scenario.db, self.scenario.constraints
        )
        assert len(repairs) == 1
        assert repairs[0].inserted == frozenset()

    def test_repair_checking(self):
        db = self.scenario.db
        ics = self.scenario.constraints
        d1 = db.delete([fact("Supply", "C2", "R1", "I3")])
        d2 = db.insert([fact("Articles", "I3")])
        assert is_s_repair(db, d1, ics)
        assert is_s_repair(db, d2, ics)
        assert is_c_repair(db, d1, ics)
        assert not is_s_repair(db, db, ics)  # inconsistent itself


class TestExample33:
    """Example 3.3: Employee under the key constraint."""

    def setup_method(self):
        self.scenario = employee()

    def test_two_repairs(self):
        repairs = s_repairs(self.scenario.db, self.scenario.constraints)
        assert len(repairs) == 2
        kept_page_salaries = {
            next(
                f.values[1] for f in r.instance if f.values[0] == "page"
            )
            for r in repairs
        }
        assert kept_page_salaries == {"5K", "8K"}

    def test_all_repairs_keep_clean_tuples(self):
        repairs = s_repairs(self.scenario.db, self.scenario.constraints)
        for r in repairs:
            assert fact("Employee", "smith", "3K") in r.instance
            assert fact("Employee", "stowe", "7K") in r.instance

    def test_count(self):
        (kc,) = self.scenario.constraints
        assert count_fd_repairs(self.scenario.db, kc) == 2
        assert count_s_repairs(self.scenario.db, [kc]) == 2


class TestExample41:
    """Example 4.1: four S-repairs, three C-repairs."""

    def setup_method(self):
        self.scenario = abcde_instance()

    def _relations(self, repairs):
        return {
            frozenset(f.relation for f in r.instance) for r in repairs
        }

    def test_four_s_repairs(self):
        repairs = s_repairs(self.scenario.db, self.scenario.constraints)
        assert self._relations(repairs) == {
            frozenset({"B", "C"}),
            frozenset({"C", "D", "E"}),
            frozenset({"A", "B", "D"}),
            frozenset({"E", "D", "A"}),
        }

    def test_three_c_repairs(self):
        repairs = c_repairs(self.scenario.db, self.scenario.constraints)
        assert self._relations(repairs) == {
            frozenset({"C", "D", "E"}),
            frozenset({"A", "B", "D"}),
            frozenset({"E", "D", "A"}),
        }

    def test_engines_agree(self):
        via_search = s_repairs(
            self.scenario.db, self.scenario.constraints, engine="search"
        )
        via_graph = s_repairs(
            self.scenario.db, self.scenario.constraints, engine="hypergraph"
        )
        assert {r.diff for r in via_search} == {r.diff for r in via_graph}

    def test_c_repair_engines_agree(self):
        auto = c_repairs(self.scenario.db, self.scenario.constraints)
        filtered = c_repairs(
            self.scenario.db, self.scenario.constraints, engine="filter"
        )
        assert {r.diff for r in auto} == {r.diff for r in filtered}

    def test_repair_distance(self):
        assert repair_distance(
            self.scenario.db, self.scenario.constraints
        ) == 2


class TestExample43:
    """Example 4.3: tuple-level null repairs for the tgd ID'."""

    def test_two_repairs_one_inserts_null(self):
        scenario = supply_articles_cost()
        repairs = null_tuple_repairs(scenario.db, scenario.constraints)
        assert len(repairs) == 2
        diffs = {r.diff for r in repairs}
        assert frozenset({fact("Supply", "C2", "R1", "I3")}) in diffs
        assert frozenset({fact("Articles", "I3", NULL)}) in diffs

    def test_repeated_existential_rejected(self):
        from repro.constraints import TupleGeneratingDependency

        db = Database.from_dict({"P": [(1,)], "Q": [(2, 2)]})
        v = vars_("v")[0]
        x = vars_("x")[0]
        tgd = TupleGeneratingDependency(
            (atom("P", x),), (atom("Q", v, v),), name="bad"
        )
        with pytest.raises(RepairError):
            null_tuple_repairs(db, (tgd,))


class TestExample44:
    """Example 4.4: attribute-level null repairs."""

    def setup_method(self):
        self.scenario = rs_instance()

    def test_paper_change_sets_found(self):
        repairs = attribute_repairs(
            self.scenario.db, self.scenario.constraints
        )
        change_sets = {r.change_labels() for r in repairs}
        # The two repairs displayed in the paper.
        assert ("t6[1]",) in change_sets
        assert ("t1[2]", "t3[2]") in change_sets

    def test_change_sets_minimal_and_consistent(self):
        repairs = attribute_repairs(
            self.scenario.db, self.scenario.constraints
        )
        for r in repairs:
            assert all(
                ic.is_satisfied(r.instance)
                for ic in self.scenario.constraints
            )
        for r1, r2 in itertools.combinations(repairs, 2):
            assert not (r1.changes < r2.changes)
            assert not (r2.changes < r1.changes)

    def test_cardinality_minimal(self):
        repairs = c_attribute_repairs(
            self.scenario.db, self.scenario.constraints
        )
        assert {r.change_labels() for r in repairs} == {("t6[1]",)}

    def test_nulled_value_visible(self):
        repairs = attribute_repairs(
            self.scenario.db, self.scenario.constraints
        )
        single = next(
            r for r in repairs if r.change_labels() == ("t6[1]",)
        )
        assert single.instance.fact_by_tid("t6").values == (NULL,)

    def test_non_denial_rejected(self):
        scenario = supply_articles()
        with pytest.raises(RepairError):
            attribute_repairs(scenario.db, scenario.constraints)

    def test_unary_dc_without_candidates(self):
        (x,) = vars_("x")
        db = Database.from_dict({"A": [(1,)]})
        dc = DenialConstraint((atom("A", x),), name="noA")
        assert attribute_repairs(db, (dc,)) == []


class TestRepairProperties:
    """Structural invariants across random instances."""

    @pytest.mark.parametrize("seed", range(6))
    def test_srepair_invariants_random_dc(self, seed):
        scenario = random_rs_instance(5, 4, 4, seed=seed)
        repairs = s_repairs(scenario.db, scenario.constraints)
        assert repairs, "the empty instance is always consistent"
        for r in repairs:
            assert r.is_consistent_under(scenario.constraints)
            assert r.instance.issubset(scenario.db)  # denial class
            assert is_s_repair(scenario.db, r.instance, scenario.constraints)
        for r1, r2 in itertools.combinations(repairs, 2):
            assert not (r1.diff < r2.diff)
            assert not (r2.diff < r1.diff)

    @pytest.mark.parametrize("seed", range(6))
    def test_crepairs_subset_of_srepairs(self, seed):
        scenario = random_rs_instance(5, 4, 4, seed=seed)
        s_diffs = {r.diff for r in s_repairs(scenario.db, scenario.constraints)}
        c = c_repairs(scenario.db, scenario.constraints)
        sizes = {r.size for r in c}
        assert len(sizes) == 1
        for r in c:
            assert r.diff in s_diffs
            assert is_c_repair(scenario.db, r.instance, scenario.constraints)

    @pytest.mark.parametrize("seed", range(6))
    def test_engines_agree_random(self, seed):
        scenario = random_rs_instance(4, 3, 3, seed=seed)
        via_search = s_repairs(
            scenario.db, scenario.constraints, engine="search"
        )
        via_graph = s_repairs(
            scenario.db, scenario.constraints, engine="hypergraph"
        )
        assert {r.diff for r in via_search} == {r.diff for r in via_graph}

    @pytest.mark.parametrize("groups,size", [(1, 2), (2, 2), (3, 2), (2, 3)])
    def test_exponential_count_closed_form(self, groups, size):
        scenario = employee_key_violations(3, groups, size, seed=1)
        (kc,) = scenario.constraints
        expected = size ** groups
        assert count_fd_repairs(scenario.db, kc) == expected
        assert len(s_repairs(scenario.db, scenario.constraints)) == expected

    def test_consistent_database_single_repair(self):
        db = Database.from_dict({"R": [("a", 1)]})
        fd = FunctionalDependency("R", ("a0",), ("a1",))
        repairs = s_repairs(db, (fd,))
        assert len(repairs) == 1
        assert repairs[0].size == 0
        assert is_s_repair(db, db, (fd,))

    def test_one_s_repair_is_a_repair(self):
        for seed in range(5):
            scenario = random_rs_instance(6, 4, 4, seed=seed)
            r = one_s_repair(scenario.db, scenario.constraints)
            assert is_s_repair(
                scenario.db, r.instance, scenario.constraints
            )

    def test_one_c_repair_achieves_distance(self):
        for seed in range(5):
            scenario = random_rs_instance(6, 4, 4, seed=seed)
            r = one_c_repair(scenario.db, scenario.constraints)
            assert r.size == repair_distance(
                scenario.db, scenario.constraints
            )

    def test_limit_parameter(self):
        scenario = employee_key_violations(0, 4, 2, seed=0)
        repairs = s_repairs(scenario.db, scenario.constraints, limit=3)
        assert len(repairs) == 3

    def test_unknown_engine_rejected(self):
        scenario = employee()
        with pytest.raises(ValueError):
            s_repairs(scenario.db, scenario.constraints, engine="quantum")
        with pytest.raises(ValueError):
            c_repairs(scenario.db, scenario.constraints, engine="quantum")
