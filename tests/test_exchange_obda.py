"""Tests for data exchange (exchange repairs) and OBDA (AR/IAR/brave)."""

import pytest

from repro.constraints import (
    DenialConstraint,
    FunctionalDependency,
    TupleGeneratingDependency,
)
from repro.datalog import rule
from repro.datalog.provenance import evaluate_with_provenance, supports_of
from repro.datalog.engine import Program
from repro.errors import ConstraintError, IntegrationError, QueryError
from repro.exchange import ExchangeSetting
from repro.logic import atom, cq, vars_
from repro.obda import Ontology
from repro.relational import (
    Database,
    Fact,
    RelationSchema,
    Schema,
    fact,
    is_labeled_null,
)

X, Y, Z = vars_("x y z")

SOURCE = Schema.of(
    RelationSchema("Emp", ("Name", "Dept")),
)
TARGET = Schema.of(
    RelationSchema("Worker", ("Name", "Dept", "Office")),
)


def _setting(target_constraints=()):
    st = TupleGeneratingDependency(
        (atom("Emp", X, Y),),
        (atom("Worker", X, Y, Z),),
        name="emp2worker",
    )
    return ExchangeSetting(SOURCE, TARGET, (st,), tuple(target_constraints))


class TestChase:
    def test_universal_solution_has_labeled_nulls(self):
        source = Database.from_dict(
            {"Emp": [("ann", "sales"), ("bob", "hr")]}, schema=SOURCE
        )
        solution = _setting().chase(source)
        rows = solution.relation("Worker")
        assert len(rows) == 2
        for row in rows:
            assert is_labeled_null(row[2])
        # Distinct witnesses get distinct nulls.
        assert rows[0][2] != rows[1][2]

    def test_schema_validation(self):
        bad = TupleGeneratingDependency(
            (atom("Nope", X),), (atom("Worker", X, X, X),)
        )
        with pytest.raises(IntegrationError):
            ExchangeSetting(SOURCE, TARGET, (bad,))

    def test_certain_answers_without_conflicts(self):
        source = Database.from_dict(
            {"Emp": [("ann", "sales")]}, schema=SOURCE
        )
        setting = _setting()
        q = cq([X, Y], [atom("Worker", X, Y, Z)], name="who")
        assert setting.certain_answers(source, q) == {("ann", "sales")}
        # The office value is a labeled null: not certain.
        q_office = cq([Z], [atom("Worker", X, Y, Z)], name="office")
        assert setting.certain_answers(source, q_office) == frozenset()


class TestExchangeRepairs:
    def test_target_fd_violation_repaired(self):
        # Target constraint: a worker has one department.
        source = Database.from_dict(
            {"Emp": [("ann", "sales"), ("ann", "hr"), ("bob", "hr")]},
            schema=SOURCE,
        )
        fd = FunctionalDependency("Worker", ("Name",), ("Dept",))
        setting = _setting((fd,))
        assert not setting.solution_is_consistent(source)
        repairs = setting.exchange_repairs(source)
        assert len(repairs) == 2
        q = cq([X, Y], [atom("Worker", X, Y, Z)], name="who")
        certain = setting.certain_answers(source, q)
        assert certain == {("bob", "hr")}

    def test_consistent_solution_single_repair(self):
        source = Database.from_dict(
            {"Emp": [("ann", "sales")]}, schema=SOURCE
        )
        fd = FunctionalDependency("Worker", ("Name",), ("Dept",))
        setting = _setting((fd,))
        assert setting.solution_is_consistent(source)
        assert len(setting.exchange_repairs(source)) == 1


class TestProvenance:
    def setup_method(self):
        self.db = Database.from_dict({
            "edge": [(1, 2), (2, 3)],
        })
        self.program = Program((
            rule(atom("path", X, Y), [atom("edge", X, Y)]),
            rule(
                atom("path", X, Z),
                [atom("edge", X, Y), atom("path", Y, Z)],
            ),
        ))

    def test_edb_supports_itself(self):
        prov = evaluate_with_provenance(self.program, self.db)
        family = supports_of(prov, fact("edge", 1, 2))
        assert family == frozenset({frozenset({fact("edge", 1, 2)})})

    def test_derived_support_is_leaf_set(self):
        prov = evaluate_with_provenance(self.program, self.db)
        family = supports_of(prov, fact("path", 1, 3))
        assert family == frozenset({
            frozenset({fact("edge", 1, 2), fact("edge", 2, 3)}),
        })

    def test_multiple_derivations_keep_minimal(self):
        db = Database.from_dict({
            "a": [(1,)], "b": [(1,)],
        })
        program = Program((
            rule(atom("p", X), [atom("a", X)]),
            rule(atom("p", X), [atom("b", X)]),
        ))
        prov = evaluate_with_provenance(program, db)
        family = supports_of(prov, fact("p", 1))
        assert family == frozenset({
            frozenset({fact("a", 1)}),
            frozenset({fact("b", 1)}),
        })

    def test_negation_rejected(self):
        from repro.datalog import negated

        program = Program((
            rule(atom("p", X), [atom("a", X), negated(atom("b", X))]),
        ))
        db = Database.from_dict({"a": [(1,)], "b": [(2,)]})
        with pytest.raises(QueryError):
            evaluate_with_provenance(program, db)

    def test_missing_fact_empty_family(self):
        prov = evaluate_with_provenance(self.program, self.db)
        assert supports_of(prov, fact("path", 3, 1)) == frozenset()


class TestOBDA:
    def setup_method(self):
        # TBox: professors and students are persons; professors teach.
        self.ontology = Ontology(
            tbox=(
                rule(atom("Person", X), [atom("Prof", X)]),
                rule(atom("Person", X), [atom("Student", X)]),
                rule(atom("Teaches", X), [atom("Prof", X)]),
            ),
            negative_constraints=(
                # Nobody is both professor and student.
                DenialConstraint(
                    (atom("Prof", X), atom("Student", X)), name="disjoint"
                ),
            ),
        )
        self.abox = Database.from_dict({
            "Prof": [("ann",), ("bob",)],
            "Student": [("ann",), ("eve",)],
        })

    def test_saturation(self):
        consistent = self.abox.delete([fact("Student", "ann")])
        saturated = self.ontology.saturate(consistent)
        assert fact("Person", "ann") in saturated
        assert fact("Teaches", "ann") in saturated
        assert fact("Person", "eve") in saturated

    def test_consistency_check(self):
        assert not self.ontology.is_consistent(self.abox)
        consistent = self.abox.delete([fact("Student", "ann")])
        assert self.ontology.is_consistent(consistent)

    def test_abox_repairs(self):
        repairs = self.ontology.abox_repairs(self.abox)
        assert len(repairs) == 2
        for repair in repairs:
            assert self.ontology.is_consistent(repair)
        kept = {frozenset(r.facts()) for r in repairs}
        assert frozenset(self.abox.facts() - {fact("Prof", "ann")}) in kept
        assert frozenset(
            self.abox.facts() - {fact("Student", "ann")}
        ) in kept

    def test_ar_iar_brave(self):
        q_person = cq([X], [atom("Person", X)], name="persons")
        ar = self.ontology.ar_answers(self.abox, q_person)
        # ann is a Person in *every* repair (as Prof or as Student).
        assert ar == {("ann",), ("bob",), ("eve",)}

        iar = self.ontology.iar_answers(self.abox, q_person)
        # In the intersection, ann is neither Prof nor Student.
        assert iar == {("bob",), ("eve",)}
        assert iar <= ar

        q_teaches = cq([X], [atom("Teaches", X)], name="teachers")
        assert self.ontology.ar_answers(self.abox, q_teaches) == {("bob",)}
        brave = self.ontology.brave_answers(self.abox, q_teaches)
        # In the repair keeping Prof(ann), ann teaches.
        assert brave == {("ann",), ("bob",)}

    def test_derived_violations_traced_to_abox(self):
        # NC over *derived* predicates: the conflict must be traced back
        # to the ABox facts that support them.
        ontology = Ontology(
            tbox=(
                rule(atom("A", X), [atom("BaseA", X)]),
                rule(atom("B", X), [atom("BaseB", X)]),
            ),
            negative_constraints=(
                DenialConstraint((atom("A", X), atom("B", X)), name="ab"),
            ),
        )
        abox = Database.from_dict({
            "BaseA": [(1,)], "BaseB": [(1,), (2,)],
        })
        assert not ontology.is_consistent(abox)
        conflicts = ontology.abox_conflicts(abox)
        assert conflicts == frozenset({
            frozenset({
                abox.tid_of(fact("BaseA", 1)),
                abox.tid_of(fact("BaseB", 1)),
            }),
        })
        repairs = ontology.abox_repairs(abox)
        assert len(repairs) == 2

    def test_negative_tbox_rejected(self):
        from repro.datalog import negated

        with pytest.raises(ConstraintError):
            Ontology(
                tbox=(
                    rule(atom("p", X), [atom("a", X), negated(atom("b", X))]),
                ),
                negative_constraints=(),
            )

    def test_consistent_abox_classical_answers(self):
        consistent = self.abox.delete([fact("Student", "ann")])
        q = cq([X], [atom("Person", X)], name="persons")
        assert self.ontology.certain_answers(consistent, q) == {
            ("ann",), ("bob",), ("eve",),
        }
        assert self.ontology.ar_answers(consistent, q) == {
            ("ann",), ("bob",), ("eve",),
        }
