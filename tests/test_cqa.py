"""Tests for consistent query answering: all four computation paths."""

import pytest

from repro.cqa import (
    answer_frequencies,
    answers_via_sql,
    approximation_gap,
    certain_core,
    consistent_answers,
    consistent_answers_by_rewriting,
    consistent_answers_fm,
    fo_rewrite,
    fuxman_miller_rewrite,
    is_consistently_true,
    is_possibly_true,
    overapproximate_answers,
    query_to_sql,
    underapproximate_answers,
)
from repro.constraints import FunctionalDependency
from repro.errors import RewritingError
from repro.logic import atom, boolean_query, cq, neq, vars_
from repro.relational import Database, RelationSchema, Schema
from repro.workloads import (
    employee,
    employee_key_violations,
    random_fd_instance,
    rs_instance,
    supply_articles,
)

X, Y, Z, W = vars_("x y z w")


class TestExample32:
    """Example 3.2: Cons(Q, D, {ID}) = {I1, I2}."""

    def setup_method(self):
        self.scenario = supply_articles()

    def test_certain_answers(self):
        answers = consistent_answers(
            self.scenario.db,
            self.scenario.constraints,
            self.scenario.queries["Q"],
        )
        assert answers == {("I1",), ("I2",)}

    def test_rewriting_matches(self):
        # Example 2.2: the residue rewriting evaluated on the original
        # instance returns the same answers.
        answers = consistent_answers_by_rewriting(
            self.scenario.db,
            self.scenario.constraints,
            self.scenario.queries["Q"],
        )
        assert answers == {("I1",), ("I2",)}

    def test_rewriting_produces_articles_residue(self):
        rewritten = fo_rewrite(
            self.scenario.queries["Q"],
            self.scenario.constraints,
            self.scenario.db,
        )
        predicates = {a.predicate for a in rewritten.body.atoms()}
        assert predicates == {"Supply", "Articles"}


class TestExample34:
    """Examples 3.3/3.4: key constraint, both queries, all paths."""

    def setup_method(self):
        self.scenario = employee()

    def test_full_query_certain(self):
        answers = consistent_answers(
            self.scenario.db,
            self.scenario.constraints,
            self.scenario.queries["Q1"],
        )
        assert answers == {("smith", "3K"), ("stowe", "7K")}

    def test_projection_query_certain(self):
        answers = consistent_answers(
            self.scenario.db,
            self.scenario.constraints,
            self.scenario.queries["Q2"],
        )
        assert answers == {("smith",), ("stowe",), ("page",)}

    def test_residue_rewriting_q1(self):
        answers = consistent_answers_by_rewriting(
            self.scenario.db,
            self.scenario.constraints,
            self.scenario.queries["Q1"],
        )
        assert answers == {("smith", "3K"), ("stowe", "7K")}

    def test_fm_rewriting_both_queries(self):
        for name, expected in [
            ("Q1", {("smith", "3K"), ("stowe", "7K")}),
            ("Q2", {("smith",), ("stowe",), ("page",)}),
        ]:
            answers = consistent_answers_fm(
                self.scenario.db,
                self.scenario.constraints,
                self.scenario.queries[name],
            )
            assert answers == expected, name

    def test_sql_path_matches_paper_sql(self):
        rewritten = fuxman_miller_rewrite(
            self.scenario.queries["Q1"],
            self.scenario.constraints,
            self.scenario.db,
        )
        sql = query_to_sql(rewritten, self.scenario.db.schema)
        assert "NOT" in sql and "EXISTS" in sql
        answers = answers_via_sql(self.scenario.db, rewritten)
        assert answers == {("smith", "3K"), ("stowe", "7K")}

    def test_sql_path_projection(self):
        rewritten = fuxman_miller_rewrite(
            self.scenario.queries["Q2"],
            self.scenario.constraints,
            self.scenario.db,
        )
        answers = answers_via_sql(self.scenario.db, rewritten)
        assert answers == {("smith",), ("stowe",), ("page",)}


class TestBooleanCQA:
    def test_consistently_true_and_possible(self):
        scenario = rs_instance()
        q_true = boolean_query([atom("S", "a2")])
        q_kappa = scenario.queries["Q"]
        assert is_consistently_true(
            scenario.db, scenario.constraints, q_true
        )
        # The DC body is false in every repair by construction.
        assert not is_consistently_true(
            scenario.db, scenario.constraints, q_kappa
        )
        assert not is_possibly_true(
            scenario.db, scenario.constraints, q_kappa
        )
        q_some = boolean_query([atom("S", "a3")])
        assert is_possibly_true(scenario.db, scenario.constraints, q_some)
        assert not is_consistently_true(
            scenario.db, scenario.constraints, q_some
        )

    def test_answer_frequencies(self):
        scenario = employee()
        freqs = dict(
            answer_frequencies(
                scenario.db,
                scenario.constraints,
                scenario.queries["Q1"],
            )
        )
        assert freqs[("smith", "3K")] == 1.0
        assert freqs[("page", "5K")] == 0.5
        assert freqs[("page", "8K")] == 0.5

    def test_unknown_semantics_rejected(self):
        scenario = employee()
        with pytest.raises(ValueError):
            consistent_answers(
                scenario.db, scenario.constraints,
                scenario.queries["Q1"], semantics="zeta",
            )


class TestFuxmanMillerClass:
    def test_join_query(self):
        # R(x, y) joins nonkey y into the key of S(y, z).
        schema = Schema.of(
            RelationSchema("R", ("K", "V"), key=("K",)),
            RelationSchema("S", ("K", "V"), key=("K",)),
        )
        db = Database.from_dict(
            {
                "R": [("r1", "s1"), ("r1", "s2"), ("r2", "s1")],
                "S": [("s1", "ok"), ("s2", "ok")],
            },
            schema=schema,
        )
        fds = (
            FunctionalDependency("R", ("K",), ("V",), name="keyR"),
            FunctionalDependency("S", ("K",), ("V",), name="keyS"),
        )
        q = cq([X], [atom("R", X, Y), atom("S", Y, Z)], name="join")
        expected = consistent_answers(db, fds, q)
        got = consistent_answers_fm(db, fds, q)
        assert got == expected
        # r1's two candidate tuples both reach some S tuple, so r1 is
        # a certain answer even though its S target differs per repair.
        assert ("r1",) in got

    def test_self_join_rejected(self):
        scenario = employee()
        q = cq([X], [atom("Employee", X, Y), atom("Employee", Y, Z)])
        with pytest.raises(RewritingError):
            fuxman_miller_rewrite(
                q, scenario.constraints, scenario.db
            )

    def test_nonkey_nonkey_join_rejected(self):
        schema = Schema.of(
            RelationSchema("R", ("K", "V"), key=("K",)),
            RelationSchema("S", ("K", "V"), key=("K",)),
        )
        db = Database.from_dict(
            {"R": [("a", "b")], "S": [("c", "b")]}, schema=schema
        )
        fds = (
            FunctionalDependency("R", ("K",), ("V",)),
            FunctionalDependency("S", ("K",), ("V",)),
        )
        q = cq([X], [atom("R", X, Y), atom("S", Z, Y)])
        with pytest.raises(RewritingError):
            fuxman_miller_rewrite(q, fds, db)

    def test_non_key_fd_rejected(self):
        db = Database.from_dict({"R": [("a", "b", "c")]})
        fd = FunctionalDependency("R", ("a0",), ("a1",))
        q = cq([X], [atom("R", X, Y, Z)])
        with pytest.raises(RewritingError):
            fuxman_miller_rewrite(q, (fd,), db)

    def test_comparison_on_existential(self):
        schema = Schema.of(RelationSchema("R", ("K", "V"), key=("K",)))
        db = Database.from_dict(
            {"R": [("a", 5), ("a", 9), ("b", 9), ("c", 1)]}, schema=schema
        )
        fd = FunctionalDependency("R", ("K",), ("V",))
        from repro.logic import Comparison

        q = cq([X], [atom("R", X, Y)], [Comparison(">", Y, 3)])
        expected = consistent_answers(db, (fd,), q)
        got = consistent_answers_fm(db, (fd,), q)
        assert got == expected == {("a",), ("b",)}

    @pytest.mark.parametrize("seed", range(8))
    def test_differential_projection_query(self, seed):
        scenario = random_fd_instance(8, 4, 3, seed=seed)
        q = cq([X], [atom("R", X, Y)], name="names")
        expected = consistent_answers(
            scenario.db, scenario.constraints, q
        )
        assert consistent_answers_fm(
            scenario.db, scenario.constraints, q
        ) == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_differential_full_query(self, seed):
        scenario = random_fd_instance(8, 4, 3, seed=seed)
        q = cq([X, Y], [atom("R", X, Y)], name="full")
        expected = consistent_answers(
            scenario.db, scenario.constraints, q
        )
        assert consistent_answers_fm(
            scenario.db, scenario.constraints, q
        ) == expected
        # The residue rewriting is also complete for this
        # quantifier-free query.
        assert consistent_answers_by_rewriting(
            scenario.db, scenario.constraints, q
        ) == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_sql_differential(self, seed):
        scenario = random_fd_instance(10, 5, 3, seed=seed)
        q = cq([X, Y], [atom("R", X, Y)], name="full")
        rewritten = fuxman_miller_rewrite(
            q, scenario.constraints, scenario.db
        )
        in_memory = rewritten.answers(scenario.db)
        via_sql = answers_via_sql(scenario.db, rewritten)
        assert via_sql == in_memory


class TestApproximation:
    def setup_method(self):
        self.scenario = employee()
        self.q1 = self.scenario.queries["Q1"]
        self.q2 = self.scenario.queries["Q2"]

    def test_core_under_approximation(self):
        under = underapproximate_answers(
            self.scenario.db, self.scenario.constraints, self.q1
        )
        exact = consistent_answers(
            self.scenario.db, self.scenario.constraints, self.q1
        )
        assert under <= exact
        assert under == {("smith", "3K"), ("stowe", "7K")}

    def test_over_approximation_contains_exact(self):
        over = overapproximate_answers(
            self.scenario.db, self.scenario.constraints, self.q2,
            sample_size=1,
        )
        exact = consistent_answers(
            self.scenario.db, self.scenario.constraints, self.q2
        )
        assert exact <= over

    def test_gap_nonnegative(self):
        assert approximation_gap(
            self.scenario.db, self.scenario.constraints, self.q2
        ) >= 0

    def test_core_drops_conflicting(self):
        core = certain_core(
            self.scenario.db, self.scenario.constraints
        )
        assert len(core) == 2

    @pytest.mark.parametrize("seed", range(5))
    def test_brackets_random(self, seed):
        scenario = random_fd_instance(9, 4, 3, seed=seed)
        q = cq([X], [atom("R", X, Y)])
        under = underapproximate_answers(
            scenario.db, scenario.constraints, q
        )
        exact = consistent_answers(scenario.db, scenario.constraints, q)
        over = overapproximate_answers(
            scenario.db, scenario.constraints, q, sample_size=2
        )
        assert under <= exact <= over


class TestSQLGeneration:
    def test_simple_cq_sql(self):
        scenario = supply_articles()
        q = scenario.queries["Q_rewritten"]
        sql = query_to_sql(q, scenario.db.schema)
        assert sql.startswith("SELECT DISTINCT")
        assert answers_via_sql(scenario.db, q) == {("I1",), ("I2",)}

    def test_boolean_sql(self):
        scenario = rs_instance()
        q = scenario.queries["Q"]
        assert answers_via_sql(scenario.db, q) == {()}
        empty = boolean_query([atom("S", "zzz")])
        assert answers_via_sql(scenario.db, empty) == frozenset()

    def test_comparisons_null_safe(self):
        from repro.relational import NULL

        db = Database.from_dict({"R": [(1, NULL), (1, 2)]})
        q = cq([X, Y], [atom("R", X, Y)], [neq(X, Y)])
        assert answers_via_sql(db, q) == q.answers(db)

    def test_shadowed_existential_rejected(self):
        from repro.logic import And, Exists, Not, Query

        db = Database.from_dict({"R": [(1,)]})
        body = And((atom("R", X), Not(Exists((X,), atom("R", X)))))
        with pytest.raises(RewritingError):
            query_to_sql(Query((X,), body), db.schema)

    def test_residue_rewritten_sql(self):
        scenario = employee()
        rewritten = fo_rewrite(
            scenario.queries["Q1"],
            scenario.constraints,
            scenario.db,
        )
        got = answers_via_sql(scenario.db, rewritten)
        assert got == {("smith", "3K"), ("stowe", "7K")}


class TestAlternativeRepairSemantics:
    def test_crepair_semantics_can_differ(self):
        # Under C-repairs, answers certain in every *minimum* repair can
        # exceed the S-repair certain answers.
        from repro.constraints import DenialConstraint
        from repro.workloads import abcde_instance

        scenario = abcde_instance()
        (x,) = vars_("x")
        q = cq([X], [atom("B", X)], name="b_values")
        s_answers = consistent_answers(
            scenario.db, scenario.constraints, q, semantics="s"
        )
        c_answers = consistent_answers(
            scenario.db, scenario.constraints, q, semantics="c"
        )
        # B(a) survives in S-repairs {B,C} and {A,B,D} but not in
        # {C,D,E}/{E,D,A}: not S-certain and not C-certain either.
        assert s_answers == c_answers == frozenset()
        q_d = cq([X], [atom("D", X)], name="d_values")
        # D(a) is in every C-repair but not in the S-repair {B, C}.
        assert consistent_answers(
            scenario.db, scenario.constraints, q_d, semantics="c"
        ) == {("a",)}
        assert consistent_answers(
            scenario.db, scenario.constraints, q_d, semantics="s"
        ) == frozenset()

    def test_delete_only_semantics(self):
        from repro.workloads import supply_articles

        scenario = supply_articles()
        q = scenario.queries["Q"]
        # Delete-only repairs lose I3 in the single repair.
        assert consistent_answers(
            scenario.db, scenario.constraints, q,
            semantics="delete-only",
        ) == {("I1",), ("I2",)}
        from repro.cqa import is_consistently_true
        from repro.logic import boolean_query

        q_i3 = boolean_query([atom("Supply", X, Y, "I3")], name="i3")
        assert not is_consistently_true(
            scenario.db, scenario.constraints, q_i3,
            semantics="delete-only",
        )
        # Under general S-repairs the Supply tuple survives in the
        # insertion repair, but not in the deletion repair.
        assert not is_consistently_true(
            scenario.db, scenario.constraints, q_i3, semantics="s"
        )


class TestSQLGenerationShapes:
    def test_forall_compiles(self):
        from repro.logic import And, Forall, Not, Or, Query
        from repro.cqa import answers_via_sql

        db = Database.from_dict({
            "R": [(1,), (2,)],
            "S": [(1,), (2,), (3,)],
        })
        # x such that S(x) and forall y (R(y) -> S(y)) — the universal
        # clause is a condition, true here.
        body = And((
            atom("S", X),
            Forall((Y,), Or((Not(atom("R", Y)), atom("S", Y)))),
        ))
        q = Query((X,), body)
        assert answers_via_sql(db, q) == q.answers(db)
        assert len(q.answers(db)) == 3

    def test_isnull_compiles(self):
        from repro.logic import And, IsNull, Not, Query
        from repro.relational import NULL
        from repro.cqa import answers_via_sql

        db = Database.from_dict({"R": [(1, NULL), (2, 5)]})
        q = Query((X,), And((atom("R", X, Y), IsNull(Y))))
        assert answers_via_sql(db, q) == q.answers(db) == {(1,)}
        q2 = Query((X,), And((atom("R", X, Y), Not(IsNull(Y)))))
        assert answers_via_sql(db, q2) == q2.answers(db) == {(2,)}

    def test_or_condition_compiles(self):
        from repro.logic import And, Or, Query
        from repro.cqa import answers_via_sql

        db = Database.from_dict({
            "R": [(1,), (2,), (3,)],
            "Good": [(1,)],
            "Ok": [(3,)],
        })
        body = And((
            atom("R", X),
            Or((atom("Good", X), atom("Ok", X))),
        ))
        q = Query((X,), body)
        assert answers_via_sql(db, q) == q.answers(db) == {(1,), (3,)}

    def test_null_constant_never_matches(self):
        from repro.relational import NULL
        from repro.cqa import answers_via_sql

        db = Database.from_dict({"R": [(NULL,), (1,)]})
        q = boolean_query([atom("R", NULL)], name="nullq")
        assert answers_via_sql(db, q) == frozenset()
        assert not q.holds(db)
