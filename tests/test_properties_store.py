"""Property tests for the durable store and the replication stream.

Two laws Hypothesis searches for counterexamples to:

* **Truncation fixed point** — for a WAL damaged at *any* seeded
  offset (bit flip or tear), one ``scan → truncate(good_bytes) →
  scan`` pass reaches a fixed point: the second scan is clean, keeps
  exactly the records the first scan salvaged, and truncating again
  removes nothing.  This is why recovery is crash-safe under repeated
  crashes — re-running it never makes the log worse.
* **Replay equivalence** — a follower that applies a shipped record
  stream through :meth:`TenantStore.apply_replicated` converges to the
  same state digest, LSN, and epoch as the primary that produced the
  stream, for any interleaving of put/mutate/delete/epoch records.
  This is the correctness core of WAL shipping: byte-level replication
  and logical replay agree.
"""

import os

from hypothesis import given, settings, strategies as st

from repro.serve.store import StorePolicy, TenantStore
from repro.serve.store.wal import scan_wal, truncate_wal

SPEC = {
    "relations": {
        "Audit": {
            "columns": ["K", "V"],
            "key": ["K"],
            "rows": [],
        }
    },
    "constraints": {"fd": ["Audit: K -> V"]},
}


def _populate(store, n_records):
    store.append_put_db("d", SPEC)
    for i in range(n_records):
        store.append_mutate("d", [["Audit", f"k{i}", f"v{i}"]], [])


# ----------------------------------------------------------------------
# scan → truncate → scan is a fixed point under seeded damage
# ----------------------------------------------------------------------


@given(
    n_records=st.integers(min_value=0, max_value=6),
    damage_at=st.floats(min_value=0.0, max_value=1.0),
    flip=st.integers(min_value=1, max_value=255),
    tear=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_truncate_then_scan_is_a_fixed_point(
    tmp_path_factory, n_records, damage_at, flip, tear
):
    directory = str(tmp_path_factory.mktemp("walprop"))
    store = TenantStore(directory, StorePolicy(fsync="never"))
    store.recover()
    _populate(store, n_records)
    store.close()
    wal_path = os.path.join(directory, "wal.log")
    with open(wal_path, "rb") as handle:
        data = handle.read()
    offset = min(int(damage_at * len(data)), len(data) - 1)
    if tear:
        damaged = data[:offset]  # torn tail at an arbitrary byte
    else:
        damaged = (
            data[:offset]
            + bytes([data[offset] ^ flip])
            + data[offset + 1:]
        )  # single-byte rot at an arbitrary byte
    with open(wal_path, "wb") as handle:
        handle.write(damaged)

    first = scan_wal(wal_path)
    # Salvaged records form an LSN-contiguous prefix of the original.
    assert [r["lsn"] for r in first.records] == list(
        range(1, len(first.records) + 1)
    )
    truncate_wal(wal_path, first.good_bytes)
    second = scan_wal(wal_path)
    assert second.clean
    assert second.records == first.records
    assert second.good_bytes == first.good_bytes
    assert second.total_bytes == first.good_bytes
    # Idempotent: a second truncation removes nothing.
    assert truncate_wal(wal_path, second.good_bytes) == 0
    assert scan_wal(wal_path).records == first.records


# ----------------------------------------------------------------------
# follower replay of the shipped stream == primary recovery
# ----------------------------------------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("mutate"),
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=9),
        ),
        st.tuples(st.just("delete"), st.integers(0, 9), st.just(0)),
        st.tuples(st.just("epoch"), st.just(0), st.just(0)),
    ),
    min_size=0,
    max_size=12,
)


@given(ops=_OPS)
@settings(max_examples=40, deadline=None)
def test_follower_replay_matches_primary_recovery(
    tmp_path_factory, ops
):
    root = tmp_path_factory.mktemp("shipprop")
    primary = TenantStore(
        str(root / "primary"), StorePolicy(fsync="never")
    )
    primary.recover()
    primary.append_put_db("d", SPEC)
    for op, a, b in ops:
        if op == "mutate":
            primary.append_mutate(
                "d", [["Audit", f"k{a}", f"v{b}"]], []
            )
        elif op == "delete":
            # Deleting a possibly-absent fact must replicate cleanly.
            primary.append_mutate(
                "d", [], [["Audit", f"k{a}", f"v{a}"]]
            )
        else:
            primary.bump_epoch()
    shipped = primary.records_since(0)
    assert shipped is not None  # no compaction at these sizes

    os.makedirs(str(root / "follower"), exist_ok=True)
    follower = TenantStore(
        str(root / "follower"), StorePolicy(fsync="never")
    )
    follower.recover()
    for record in shipped:
        assert follower.apply_replicated(record) is True
    assert follower.last_lsn == primary.last_lsn
    assert follower.epoch == primary.epoch
    assert (
        follower.current_state_digest()
        == primary.current_state_digest()
    )
    # And the follower's own durability holds: recovering its data
    # directory reproduces the same digest — shipped bytes, applied
    # state, and recovered state all agree.
    follower.close()
    recovered = TenantStore(
        str(root / "follower"), StorePolicy(fsync="never")
    )
    state = recovered.recover()
    assert state.state_digest == primary.current_state_digest()
    assert state.last_lsn == primary.last_lsn
    assert state.epoch == primary.epoch
    primary.close()
    recovered.close()
