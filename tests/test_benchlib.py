"""Tests for the shared benchmark runner (benchmarks/_benchlib.py)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_BENCHLIB_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "_benchlib.py"
)


@pytest.fixture(scope="module")
def benchlib():
    spec = importlib.util.spec_from_file_location("_benchlib", _BENCHLIB_PATH)
    module = importlib.util.module_from_spec(spec)
    # Register before exec: the dataclasses in the module need their
    # defining module resolvable through sys.modules.
    sys.modules.setdefault("_benchlib", module)
    spec.loader.exec_module(module)
    return sys.modules["_benchlib"]


def test_suite_name_for(benchlib):
    assert benchlib.suite_name_for("benchmarks/bench_scaling.py") == "scaling"
    assert benchlib.suite_name_for("odd.py") == "odd"


def test_measure_records_and_returns_result(benchlib):
    from repro.observability import add

    runner = benchlib.BenchRunner("unit")

    def work(n):
        add("repairs.s_emitted", n)
        return n * 2

    result = runner.measure(
        "work[3]", work, 3, params={"n": 3}, min_rounds=2, target_s=0.0
    )
    assert result == 6
    (record,) = runner.records
    assert record.name == "work[3]"
    assert record.params == {"n": 3}
    assert record.rounds >= 2
    assert record.best_s <= record.mean_s
    assert record.best_s <= record.median_s
    assert record.counters == {"repairs.s_emitted": 3}
    assert record.mem_peak_kb is None
    assert "mem_peak_kb" not in record.to_dict()


def test_profile_mem_records_peak(benchlib):
    runner = benchlib.BenchRunner("unit")

    def allocate():
        return [0] * 100_000

    runner.measure(
        "alloc", allocate, min_rounds=1, target_s=0.0, profile_mem=True
    )
    (record,) = runner.records
    assert record.mem_peak_kb is not None
    assert record.mem_peak_kb > 400  # 100k machine ints
    assert record.to_dict()["mem_peak_kb"] == record.mem_peak_kb


def test_write_emits_valid_json(benchlib, tmp_path):
    runner = benchlib.BenchRunner("unit")
    runner.measure("noop", lambda: None, min_rounds=1, target_s=0.0)
    path = runner.write(tmp_path)
    assert path.name == "BENCH_unit.json"
    data = json.loads(path.read_text())
    assert data["suite"] == "unit"
    assert data["results"][0]["name"] == "noop"
    assert "best_s" in data["results"][0]


def test_render_mentions_each_record(benchlib):
    runner = benchlib.BenchRunner("unit")
    runner.measure("alpha", lambda: None, min_rounds=1, target_s=0.0)
    runner.measure("beta", lambda: None, min_rounds=1, target_s=0.0)
    text = runner.render()
    assert "alpha" in text and "beta" in text and "best" in text
